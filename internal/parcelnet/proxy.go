package parcelnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parcel-go/parcel/internal/mhtml"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
)

// ProxyConfig tunes the real-network PARCEL proxy.
type ProxyConfig struct {
	// OriginAddr is where every logical domain is served (the replay
	// origin); production deployments would resolve DNS instead.
	OriginAddr string
	// Sched is the bundle schedule.
	Sched sched.Config
	// QuietPeriod is the §4.5 completion heuristic window.
	QuietPeriod time.Duration
	// IdleTimeout reaps sessions whose client has gone silent: the read side
	// is deadlined per frame, so a dead client frees its session (and the
	// resources behind it) instead of pinning them forever. 0 means the
	// 2-minute default; negative disables the deadline.
	IdleTimeout time.Duration
	// FixedRandom applies the §7.3 replay rewrite in page JS.
	FixedRandom bool

	// Shards is the accept-side sharding width: sessions are hashed onto
	// Shards independent registries so registration, reaping, and counters
	// never contend on one proxy-wide lock. 0 means GOMAXPROCS.
	Shards int
	// CacheBytes enables the cross-session object cache with the given byte
	// budget: origin objects fetched for one session are served to every
	// other session from memory, single-flighted so concurrent misses cost
	// one origin fetch. 0 disables the cache (each session fetches its own
	// objects, the pre-multi-tenant behaviour).
	CacheBytes int64
	// OriginConns bounds the proxy-wide origin connection pool (the shared
	// fetcher replaces the historical per-session fetchers, whose pools
	// multiplied by session count). 0 means 64 — the paper's
	// "well-provisioned" server pool (§4.3).
	OriginConns int
	// SessionPushBudget bounds the encoded-but-unsent bundle bytes queued per
	// session. When a flush would exceed it, the items are deferred — parked
	// and re-admitted as the client drains — instead of growing the queue
	// without bound behind a slow reader. 0 means 8 MB; negative disables
	// the budget.
	SessionPushBudget int64
	// ProxyPushBudget bounds queued bundle bytes across all sessions. When a
	// flush cannot reserve against it, the items are shed: the client is told
	// (TShed) to fetch them over its direct-origin path, trading push benefit
	// for bounded memory. 0 means 64 MB; negative disables the budget.
	ProxyPushBudget int64
	// WrapConn, when set, wraps every accepted connection before the session
	// reads from it (tests use it to shape the server side or shrink socket
	// buffers so backpressure is reachable at test scale).
	WrapConn func(net.Conn) net.Conn

	// Resilience, when set, wraps origin fetches in the internal/resilience
	// discipline: per-attempt deadlines, a jittered-backoff retry budget, and
	// per-origin circuit breakers. With the shared cache enabled it also
	// arms serve-stale-on-error (CacheFreshFor) and negative caching
	// (Policy.NegTTL). Nil keeps the legacy fetch path byte-for-byte.
	Resilience *resilience.Policy
	// CacheFreshFor is the shared cache's freshness window under Resilience:
	// entries older than this are revalidated at the origin, and served stale
	// when the origin is failing. 0 means entries never go stale (the legacy
	// behavior). Ignored without Resilience or without CacheBytes.
	CacheFreshFor time.Duration

	// MuxChunkSize is the parcelmux data-chunk size for sessions that request
	// the stream layer (0 means 32 KB). MuxStreamWindow and MuxConnWindow are
	// the initial per-stream and per-connection flow-control windows (0 means
	// 256 KB and 1 MB). Sessions that do not set PageRequest.Mux are served
	// over the legacy monolithic-bundle path regardless.
	MuxChunkSize    int
	MuxStreamWindow int64
	MuxConnWindow   int64

	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Proxy is a running real-network PARCEL proxy: a listener fanning sessions
// out over shards, a shared origin fetcher, and (optionally) the
// cross-session object cache and push-budget admission control.
type Proxy struct {
	cfg   ProxyConfig
	ln    net.Listener
	wg    sync.WaitGroup
	fetch *OriginFetcher
	cache *objcache.Cache   // nil when CacheBytes == 0
	res   *resilientFetcher // nil when Resilience is not configured

	// queued is the proxy-wide reservation counter for encoded-but-unsent
	// bundle bytes; deferred/shedTotal aggregate admission outcomes.
	queued    atomic.Int64
	deferred  atomic.Int64
	shedTotal atomic.Int64
	drained   atomic.Int64
	closed    atomic.Bool

	shards []*shard
}

// shard owns one slice of the accept-side state: its own lock, session
// registry, and served counter. Sessions are hashed onto shards by client
// address, so a stalled or churning tenant contends only with its shard.
type shard struct {
	mu     sync.Mutex
	active map[*session]struct{}
	served int
}

// StartProxy listens on addr and serves PARCEL sessions.
func StartProxy(addr string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.OriginAddr == "" {
		return nil, fmt.Errorf("parcelnet: ProxyConfig.OriginAddr required")
	}
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 2 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.OriginConns <= 0 {
		cfg.OriginConns = 64
	}
	if cfg.SessionPushBudget == 0 {
		cfg.SessionPushBudget = 8 << 20
	}
	if cfg.ProxyPushBudget == 0 {
		cfg.ProxyPushBudget = 64 << 20
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		fetch: NewOriginFetcherN(cfg.OriginAddr, cfg.OriginConns),
	}
	if cfg.Resilience != nil {
		if err := cfg.Resilience.Validate(); err != nil {
			ln.Close()
			return nil, err
		}
		p.res = newResilientFetcher(p.fetch, *cfg.Resilience)
	}
	if cfg.CacheBytes > 0 {
		ccfg := objcache.Config{Capacity: cfg.CacheBytes, Segments: cfg.Shards}
		if p.res != nil {
			ccfg.FreshFor = cfg.CacheFreshFor
			ccfg.NegTTL = p.res.policy.NegTTL
		}
		p.cache = objcache.New(ccfg)
	}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		p.shards[i] = &shard{active: make(map[*session]struct{})}
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting sessions, tears down the active ones, and waits for
// their goroutines to exit. After a Drain it only waits (the listener and
// sessions are already gone), so `defer proxy.Close()` composes with an
// explicit drain.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	for _, s := range p.activeSessions() {
		s.conn.Close()
	}
	p.wg.Wait()
	p.fetch.Client.CloseIdleConnections()
	return err
}

// drainPoll is the Drain busy-wait granularity, and drainFlushFloor the
// minimum window a straggler gets to read its TDrain notice off the wire even
// when the drain deadline has already passed.
const (
	drainPoll       = 2 * time.Millisecond
	drainFlushFloor = 100 * time.Millisecond
)

// Drain retires the proxy gracefully: it stops admitting sessions, gives the
// live ones until the deadline to finish delivering their pages, then hands
// every remaining session a TDrain notice — carrying the pending work as a
// resume manifest — and closes the connections once the notices are flushed.
// Clients reconnect to a restarted proxy with that manifest or fall back to
// their direct-origin path, so a drain loses no objects. Drain returns once
// every session goroutine has exited; a later Close is a cheap no-op.
func (p *Proxy) Drain(timeout time.Duration) error {
	p.closed.Store(true)
	err := p.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	deadline := time.Now().Add(timeout)
	for p.busySessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(drainPoll)
	}
	for _, s := range p.activeSessions() {
		s.drainNotice()
	}
	// The notice rides each session's send queue; clients hang up when they
	// read it, which is what empties the registry. Stragglers that never do
	// (dead readers, jammed links) are cut off after the flush window.
	flush := time.Until(deadline)
	if flush < drainFlushFloor {
		flush = drainFlushFloor
	}
	flushDeadline := time.Now().Add(flush)
	for p.Sessions() > 0 && time.Now().Before(flushDeadline) {
		time.Sleep(drainPoll)
	}
	for _, s := range p.activeSessions() {
		s.conn.Close()
	}
	p.wg.Wait()
	p.fetch.Client.CloseIdleConnections()
	return err
}

// DrainedSessions returns how many sessions were handed a TDrain notice.
func (p *Proxy) DrainedSessions() int64 { return p.drained.Load() }

// activeSessions snapshots the registered sessions across shards.
func (p *Proxy) activeSessions() []*session {
	var out []*session
	for _, sh := range p.shards {
		sh.mu.Lock()
		for s := range sh.active {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	return out
}

// busySessions counts sessions still delivering page content — anything not
// yet idle in the idleLocked sense.
func (p *Proxy) busySessions() int {
	n := 0
	for _, s := range p.activeSessions() {
		s.mu.Lock()
		if !s.idleLocked() {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// Sessions returns the number of currently active sessions across shards.
func (p *Proxy) Sessions() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += len(sh.active)
		sh.mu.Unlock()
	}
	return n
}

// SessionsServed returns the total number of sessions accepted so far.
func (p *Proxy) SessionsServed() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.served
		sh.mu.Unlock()
	}
	return n
}

// ShardSessions returns the per-shard session counts (in shard order) — the
// observability hook the multi-tenant tests assert shard distribution and
// reaping against.
func (p *Proxy) ShardSessions() []int {
	out := make([]int, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		out[i] = len(sh.active)
		sh.mu.Unlock()
	}
	return out
}

// CacheStats returns the shared object cache's counters (zero when disabled).
func (p *Proxy) CacheStats() objcache.Stats {
	if p.cache == nil {
		return objcache.Stats{}
	}
	return p.cache.Stats()
}

// QueuedBytes returns the current proxy-wide reservation against
// ProxyPushBudget: encoded bundle bytes accepted but not yet written.
func (p *Proxy) QueuedBytes() int64 { return p.queued.Load() }

// DeferredTotal returns how many objects admission control has parked behind
// slow readers so far (they are re-admitted as the session drains).
func (p *Proxy) DeferredTotal() int64 { return p.deferred.Load() }

// ShedTotal returns how many objects admission control has shed to clients'
// direct-origin paths so far.
func (p *Proxy) ShedTotal() int64 { return p.shedTotal.Load() }

// reserve claims n bytes of the proxy-wide push budget, failing when the
// budget is exhausted (the shed signal). Reservations are released as the
// writer drains frames (releaseQueuedLocked) or handed off with the frame
// that carries them (enqueueLocked, muxSender.add); the pairing analyzer
// checks every admission path does one or the other.
//
//parcelvet:acquire pushq
func (p *Proxy) reserve(n int64) bool {
	budget := p.cfg.ProxyPushBudget
	for {
		cur := p.queued.Load()
		if budget > 0 && cur+n > budget {
			return false
		}
		if p.queued.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

// shardFor hashes a client address onto a shard.
func (p *Proxy) shardFor(addr string) *shard {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// outFrame is one queued write: an encoded frame plus the bytes it reserved
// against the session and proxy push budgets (0 for control frames).
type outFrame struct {
	typ      byte
	payload  []byte
	reserved int64
}

// session is the per-connection proxy state.
type session struct {
	proxy *Proxy
	shard *shard
	conn  net.Conn
	fw    *FrameWriter

	mu       sync.Mutex
	sendCond *sync.Cond
	// sendq is the write queue the session's writer goroutine drains; the
	// serve loop, the crawler callbacks, and the quiet timer only ever
	// enqueue, so a slow client blocks its writer, never the proxy.
	sendq      []outFrame
	sendqBytes int64
	writerDone chan struct{}
	// parked holds deferred items: flushed by the bundler while the session
	// budget was full, re-admitted as the writer drains.
	parked []sched.Item
	// mux is the parcelmux stream scheduler for sessions that requested the
	// multiplexed layer (nil on the legacy bundle path). partialOffsets maps
	// resume-manifest URLs to the byte offset the client already holds;
	// completeNote/completeQueued stage the TComplete frame until every live
	// stream has drained.
	mux            *muxSender
	partialOffsets map[string]int64
	resumed        int
	completeNote   []byte
	completeQueued bool

	bundler      *sched.Bundler
	cache        map[string]Object // session view; bodies nil when the shared cache holds them
	have         map[string]bool   // resume manifest: objects the client holds
	quiet        *time.Timer
	onloadSeen   bool
	completeSent bool
	closed       bool

	pushed        int
	pushedBytes   int64
	skipped       int
	deferredSeen  int
	shedSeen      int
	cacheHits     int
	cacheMisses   int
	originRetries int
	staleServes   int
	originBytes   int64
	sharedBodies  bool
}

func (p *Proxy) serve(conn net.Conn) {
	if p.cfg.WrapConn != nil {
		conn = p.cfg.WrapConn(conn)
	}
	sh := p.shardFor(conn.RemoteAddr().String())
	s := &session{
		proxy:        p,
		shard:        sh,
		conn:         conn,
		fw:           NewFrameWriter(conn),
		cache:        make(map[string]Object),
		writerDone:   make(chan struct{}),
		sharedBodies: p.cache != nil,
	}
	s.sendCond = sync.NewCond(&s.mu)
	sh.mu.Lock()
	if p.closed.Load() {
		sh.mu.Unlock()
		conn.Close()
		close(s.writerDone)
		return
	}
	sh.served++
	sh.active[s] = struct{}{}
	sh.mu.Unlock()
	go s.writeLoop()
	defer s.teardown()
	for {
		if p.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(p.cfg.IdleTimeout)); err != nil {
				p.cfg.Logf("set read deadline: %v", err)
				return
			}
		}
		typ, payload, err := ReadFramePooled(conn)
		if err != nil {
			return
		}
		ok := s.handleFrame(typ, payload)
		// json.Unmarshal and the window-update decode copy everything they
		// keep, so the payload can go straight back to the pool.
		ReleaseFrameBuf(payload)
		if !ok {
			return
		}
	}
}

// handleFrame dispatches one inbound frame; it must not retain payload
// (the serve loop recycles it). It returns false to tear the session down.
func (s *session) handleFrame(typ byte, payload []byte) bool {
	p := s.proxy
	switch typ {
	case TPageRequest:
		var req PageRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			p.cfg.Logf("bad page request: %v", err)
			return false
		}
		return s.startPage(req)
	case TObjectRequest:
		var req ObjectRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			p.cfg.Logf("bad object request: %v", err)
			return false
		}
		go s.serveFallback(req.URL)
	case TWindowUpdate:
		if len(payload) < 8 {
			p.cfg.Logf("short window update (%d bytes)", len(payload))
			return false
		}
		id := binary.BigEndian.Uint32(payload[0:])
		inc := binary.BigEndian.Uint32(payload[4:])
		s.mu.Lock()
		if s.mux != nil {
			s.mux.credit(id, inc)
			s.sendCond.Signal()
		}
		s.mu.Unlock()
	default:
		p.cfg.Logf("unexpected frame type %d", typ)
	}
	return true
}

// idleLocked reports whether the session has nothing left to deliver: its
// page completed and every queued frame, parked deferral, and mux stream has
// drained. An idle session is only still registered because the client keeps
// the connection open.
func (s *session) idleLocked() bool {
	return s.completeSent && len(s.sendq) == 0 && len(s.parked) == 0 &&
		!s.completeQueued && (s.mux == nil || s.mux.live == 0)
}

// drainNotice queues the session's TDrain frame. The pending manifest is
// whatever the proxy scheduled but will no longer deliver — parked deferrals
// plus mux streams with unsent bytes — so the client knows exactly what to
// recover elsewhere. Already-closed sessions are skipped.
func (s *session) drainNotice() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	var note DrainNote
	for _, it := range s.parked {
		note.Pending = append(note.Pending, it.URL)
	}
	if s.mux != nil {
		note.Pending = append(note.Pending, s.mux.pendingURLs()...)
	}
	sort.Strings(note.Pending)
	s.proxy.drained.Add(1)
	if err := s.enqueueJSONLocked(TDrain, note); err != nil {
		// The client can never learn it should recover elsewhere; kill the
		// connection so its standard disconnect path takes over.
		s.proxy.cfg.Logf("%v", err)
		s.conn.Close()
	}
}

// teardown releases everything a session holds: the connection, the pending
// quiet timer, the writer goroutine, and any push-budget reservations. It
// runs exactly once, when serve returns, and unregisters the session from its
// shard.
func (s *session) teardown() {
	s.mu.Lock()
	s.closed = true
	if s.quiet != nil {
		s.quiet.Stop()
		s.quiet = nil
	}
	s.sendCond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
	<-s.writerDone
	sh := s.shard
	sh.mu.Lock()
	delete(sh.active, s)
	sh.mu.Unlock()
}

// writeLoop is the session's writer goroutine: it drains the send queue onto
// the connection, releases budget reservations as frames leave, and
// re-admits parked (deferred) items as space frees up. On a write error it
// closes the connection so the read side tears the session down.
func (s *session) writeLoop() {
	defer close(s.writerDone)
	for {
		var (
			f       outFrame
			raw     []byte // preassembled mux frame (header included)
			drained int64  // mux body bytes this frame releases
			haveCtl bool
		)
		s.mu.Lock()
		for {
			if s.closed {
				s.drainLocked()
				s.mu.Unlock()
				return
			}
			// Control frames (settings, shed notes, fallback responses, legacy
			// bundles) drain ahead of mux data; the TComplete barrier waits for
			// every live stream to finish so completion never overtakes data.
			if len(s.sendq) > 0 {
				f = s.sendq[0]
				s.sendq[0] = outFrame{}
				s.sendq = s.sendq[1:]
				haveCtl = true
				break
			}
			if s.mux != nil {
				if fr, n, ok := s.mux.nextFrame(); ok {
					raw, drained = fr, int64(n)
					break
				}
				if s.completeQueued && s.mux.live == 0 {
					f = outFrame{typ: TComplete, payload: s.completeNote}
					s.completeQueued = false
					haveCtl = true
					break
				}
			}
			s.sendCond.Wait()
		}
		s.mu.Unlock()

		var err error
		if haveCtl {
			err = s.fw.Write(f.typ, f.payload)
		} else {
			// raw lives in the mux scratch buffer; only this goroutine calls
			// nextFrame, so it stays valid across the unlocked write.
			err = s.fw.WriteRaw(raw)
		}

		s.mu.Lock()
		s.releaseQueuedLocked(f.reserved + drained)
		if err != nil {
			s.proxy.cfg.Logf("session write: %v", err)
			s.drainLocked()
			s.mu.Unlock()
			s.conn.Close()
			return
		}
		s.promoteParkedLocked()
		s.mu.Unlock()
	}
}

// releaseQueuedLocked returns n reserved bytes to the session and proxy push
// budgets — the single point where pushq reservations die, as frames drain
// onto the wire or with the session itself.
//
//parcelvet:release pushq
func (s *session) releaseQueuedLocked(n int64) {
	if n <= 0 {
		return
	}
	s.sendqBytes -= n
	s.proxy.queued.Add(-n)
}

// drainLocked releases every remaining reservation of a dying session so the
// proxy-wide budget is never leaked by disconnects.
func (s *session) drainLocked() {
	for _, f := range s.sendq {
		s.releaseQueuedLocked(f.reserved)
	}
	s.sendq = nil
	if s.mux != nil {
		s.releaseQueuedLocked(s.mux.drain())
	}
}

// enqueueLocked appends one frame to the send queue and wakes the writer.
// The frame's reservation rides with it: ownership of those pushq bytes
// passes to the send queue, and the writer releases them as it drains.
//
//parcelvet:transfer pushq
func (s *session) enqueueLocked(f outFrame) {
	s.sendq = append(s.sendq, f)
	s.sendCond.Signal()
}

// enqueueJSONLocked queues a small control frame (no budget reservation).
// The returned error is the marshal failure; callers must tear the session
// down on it (wireerr enforces this) — a silently dropped control note
// strands the client waiting for a shed/drain/complete signal that never
// comes.
func (s *session) enqueueJSONLocked(typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("parcelnet: encode control frame %d: %w", typ, err)
	}
	s.enqueueLocked(outFrame{typ: typ, payload: data})
	return nil
}

// startPage begins serving one page request. It returns false — tearing the
// session down — on a second TPageRequest over the same connection: the
// protocol is one page per session, and silently replacing s.mux/s.bundler
// would strand the old mux sender's reservations in sendqBytes and the
// proxy-wide budget forever (drainLocked only ever drains the current mux).
func (s *session) startPage(req PageRequest) bool {
	cfg := s.proxy.cfg
	cfg.Logf("page request: %s (ua=%q, have=%d)", req.URL, req.UserAgent, len(req.Have))
	s.mu.Lock()
	if s.bundler != nil {
		s.mu.Unlock()
		cfg.Logf("duplicate page request on one session: %s", req.URL)
		return false
	}
	s.have = make(map[string]bool, len(req.Have))
	for _, u := range req.Have {
		s.have[u] = true
	}
	if req.Mux {
		s.mux = newMuxSender(cfg.MuxChunkSize, cfg.MuxStreamWindow, cfg.MuxConnWindow)
		if len(req.Partial) > 0 {
			s.partialOffsets = make(map[string]int64, len(req.Partial))
			for _, po := range req.Partial {
				if po.Bytes > 0 {
					s.partialOffsets[po.URL] = po.Bytes
				}
			}
		}
		// Settings ride the control queue so the client learns the windows
		// before the first stream frame.
		s.enqueueLocked(outFrame{typ: TMuxSettings, payload: s.mux.settingsPayload()})
	}
	s.bundler = sched.NewBundler(cfg.Sched, s.flushLocked)
	s.mu.Unlock()

	crawl := newCrawler(s.fetchURL, cfg.FixedRandom,
		func(obj Object) { s.collect(obj) },
		func() { s.onLoad() },
		func() { /* completion handled by the quiet heuristic */ },
	)
	crawl.start(req.URL)
	return true
}

// fetchURL is the session's object source: the shared cross-session cache
// when enabled (counting per-session hits/misses and attributing origin
// bytes to the session that actually caused the fetch), a plain origin fetch
// otherwise.
func (s *session) fetchURL(url string) ([]byte, string, int, error) {
	p := s.proxy
	if p.res != nil {
		return s.fetchResilient(url)
	}
	if p.cache == nil {
		body, ct, status, err := p.fetch.Fetch(url)
		if err == nil {
			s.mu.Lock()
			s.originBytes += int64(len(body))
			s.mu.Unlock()
		}
		return body, ct, status, err
	}
	performed := false
	obj, hit, err := p.cache.GetOrFetch(url, func() (objcache.Object, error) {
		performed = true
		body, ct, status, validator, ferr := p.fetch.FetchValidated(url)
		if ferr != nil {
			return objcache.Object{}, ferr
		}
		// Only the session whose fetch actually ran pays the origin bytes;
		// single-flight joiners get the object for free.
		s.mu.Lock()
		s.originBytes += int64(len(body))
		s.mu.Unlock()
		return objcache.Object{URL: url, ContentType: ct, Status: status, Validator: validator, Body: body}, nil
	})
	s.mu.Lock()
	// A session-level hit is any lookup that cost this session no origin
	// fetch: a resident entry, or joining another session's flight.
	if hit || (!performed && err == nil) {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
	s.mu.Unlock()
	if err != nil {
		return nil, "", 0, err
	}
	return obj.Body, obj.ContentType, obj.Status, nil
}

// collect feeds one crawled object into the schedule and resets the §4.5
// inactivity window. Objects the resume manifest already lists are cached
// (they can still be served via fallback) but not re-pushed.
func (s *session) collect(obj Object) {
	s.mu.Lock()
	s.storeLocked(obj)
	if s.have[obj.URL] {
		s.skipped++
		if s.onloadSeen {
			s.armQuietLocked()
		}
		s.mu.Unlock()
		return
	}
	if s.completeSent {
		// Objects arriving after the completion notification (missed by the
		// heuristic) are pushed individually so the client is never starved.
		s.flushLocked([]sched.Item{itemFromObject(obj)}, sched.FlushComplete)
		s.mu.Unlock()
		return
	}
	s.bundler.Add(itemFromObject(obj))
	if s.onloadSeen {
		s.armQuietLocked()
	}
	s.mu.Unlock()
}

// storeLocked records the session's view of an object. With the shared cache
// enabled only metadata is kept — the body lives (deduplicated) in the cache
// and fallback requests re-resolve through it — so N sessions of one page
// cost one body, not N.
func (s *session) storeLocked(obj Object) {
	if s.sharedBodies {
		obj.Body = nil
	}
	s.cache[obj.URL] = obj
}

func (s *session) onLoad() {
	s.mu.Lock()
	s.onloadSeen = true
	s.bundler.OnLoad()
	s.armQuietLocked()
	s.mu.Unlock()
}

func (s *session) armQuietLocked() {
	if s.closed {
		return
	}
	if s.quiet != nil {
		s.quiet.Stop()
	}
	s.quiet = time.AfterFunc(s.proxy.cfg.QuietPeriod, s.declareComplete)
}

func (s *session) declareComplete() {
	s.mu.Lock()
	if s.completeSent || s.closed {
		s.mu.Unlock()
		return
	}
	s.completeSent = true
	s.bundler.Complete()
	// Parked items that still cannot be admitted are shed now: the page must
	// terminate with the client knowing everything it has to fetch itself.
	if len(s.parked) > 0 {
		s.shedLocked(s.parked)
		s.parked = nil
	}
	note := CompleteNote{
		ObjectsPushed:   s.pushed,
		BytesPushed:     s.pushedBytes,
		ObjectsSkipped:  s.skipped,
		ObjectsResumed:  s.resumed,
		ObjectsDeferred: s.deferredSeen,
		ObjectsShed:     s.shedSeen,
		CacheHits:       s.cacheHits,
		CacheMisses:     s.cacheMisses,
		OriginRetries:   s.originRetries,
		StaleServes:     s.staleServes,
		OriginBytes:     s.originBytes,
	}
	if s.mux != nil {
		// Under mux the note cannot ride the control queue — control frames
		// drain ahead of stream data, and completion must come last. Stage it
		// for the writer, which emits it once every live stream has finished.
		data, err := json.Marshal(note)
		if err != nil {
			s.proxy.cfg.Logf("encode complete note: %v", err)
		} else {
			s.completeNote = data
			s.completeQueued = true
			s.sendCond.Signal()
		}
		s.mu.Unlock()
		return
	}
	// The note rides the send queue so it cannot overtake queued bundles.
	if err := s.enqueueJSONLocked(TComplete, note); err != nil {
		// Without the note the client waits out its completion timeout; close
		// the connection instead so it fails over immediately.
		s.proxy.cfg.Logf("%v", err)
		s.conn.Close()
	}
	s.mu.Unlock()
}

func itemFromObject(o Object) sched.Item {
	return sched.Item{URL: o.URL, ContentType: o.ContentType, Status: o.Status, Body: o.Body}
}

// flushLocked admits one scheduled bundle; the bundler invokes it with s.mu
// held. Admission control happens here: within the session budget the bundle
// is encoded and queued; over it, items are deferred (parked for re-admission
// as the writer drains); and when the proxy-wide budget cannot cover the
// bundle, items are shed to the client's direct-origin path.
func (s *session) flushLocked(items []sched.Item, reason sched.FlushReason) {
	if s.mux != nil {
		s.admitMuxLocked(items)
		return
	}
	s.admitLocked(items)
}

// admitMuxLocked admits scheduled items as parcelmux streams, one stream per
// object. The same budgets apply as on the legacy path, but per item: a
// stream reserves its remaining body bytes on admission and releases them
// chunk by chunk as the writer drains. Once one item parks, the rest park
// behind it so schedule order survives deferral.
func (s *session) admitMuxLocked(items []sched.Item) {
	if s.closed {
		return
	}
	for i, it := range items {
		if len(s.parked) > 0 {
			s.parkLocked(items[i:])
			return
		}
		s.admitMuxItemLocked(it, true)
	}
}

// admitMuxItemLocked admits one object to the mux scheduler. fresh marks a
// first-time admission (a park counts as a new deferral); re-admissions from
// the parked list pass false so they are not double-counted.
func (s *session) admitMuxItemLocked(it sched.Item, fresh bool) {
	offset := s.partialOffsets[it.URL]
	total := int64(len(it.Body))
	if offset > total {
		offset = total
	}
	rem := it.Body[offset:]
	n := int64(len(rem))
	if b := s.proxy.cfg.SessionPushBudget; b > 0 && s.sendqBytes > 0 && s.sendqBytes+n > b {
		if fresh {
			s.parkLocked([]sched.Item{it})
		} else {
			s.parked = append(s.parked, it)
		}
		return
	}
	if !s.proxy.reserve(n) {
		switch {
		case s.sendqBytes > 0 && fresh:
			s.parkLocked([]sched.Item{it})
		case s.sendqBytes > 0:
			s.parked = append(s.parked, it)
		default:
			s.shedLocked([]sched.Item{it})
		}
		return
	}
	if offset > 0 {
		s.resumed++
		delete(s.partialOffsets, it.URL)
	}
	s.pushed++
	s.pushedBytes += n
	s.sendqBytes += n
	s.mux.add(it.URL, it.ContentType, it.Status, rem, offset, total)
	s.sendCond.Signal()
}

func (s *session) admitLocked(items []sched.Item) {
	if len(items) == 0 || s.closed {
		return
	}
	parts := make([]mhtml.Part, len(items))
	var bodyBytes int64
	for i, it := range items {
		parts[i] = mhtml.Part{URL: it.URL, ContentType: it.ContentType, Status: it.Status, Body: it.Body}
		bodyBytes += int64(len(it.Body))
	}
	payload := mhtml.Encode(parts)
	n := int64(len(payload))
	// Defer: the session's queue is occupied and this bundle would blow its
	// budget. Park the items — the writer re-admits them as frames drain, and
	// completion sheds whatever never fit. A bundle arriving at an empty
	// queue is always admitted so a single oversized flush cannot livelock.
	if b := s.proxy.cfg.SessionPushBudget; b > 0 && s.sendqBytes > 0 && s.sendqBytes+n > b {
		s.parkLocked(items)
		return
	}
	// The proxy-wide budget has no room. With frames still queued this is
	// another deferral (our own drain releases budget, so retrying is
	// guaranteed progress); with an empty queue nothing of ours will drain,
	// so the items are shed: the client fetches them itself (DIR
	// degradation) instead of the proxy queueing unboundedly.
	if !s.proxy.reserve(n) {
		if s.sendqBytes > 0 {
			s.parkLocked(items)
		} else {
			s.shedLocked(items)
		}
		return
	}
	s.pushed += len(items)
	s.pushedBytes += bodyBytes
	s.sendqBytes += n
	s.enqueueLocked(outFrame{typ: TBundle, payload: payload, reserved: n})
}

// shedLocked records and announces shed objects.
func (s *session) shedLocked(items []sched.Item) {
	urls := make([]string, len(items))
	for i, it := range items {
		urls[i] = it.URL
	}
	s.shedSeen += len(items)
	s.proxy.shedTotal.Add(int64(len(items)))
	if err := s.enqueueJSONLocked(TShed, ShedNote{URLs: urls}); err != nil {
		// The client would wait on pushes that never come instead of
		// fetching the shed objects itself; tear the session down.
		s.proxy.cfg.Logf("%v", err)
		s.conn.Close()
	}
}

// parkLocked defers items for later re-admission, counting each object once.
func (s *session) parkLocked(items []sched.Item) {
	s.parked = append(s.parked, items...)
	s.deferredSeen += len(items)
	s.proxy.deferred.Add(int64(len(items)))
}

// promoteParkedLocked re-admits deferred items once the queue has drained
// below the session budget — one item per bundle, so a long parked backlog
// refills the queue incrementally instead of as one budget-busting batch.
// Re-admission may re-park a tail that still does not fit; an empty queue
// admits unconditionally, so parked items always make progress once the
// client catches up.
func (s *session) promoteParkedLocked() {
	if len(s.parked) == 0 || s.closed {
		return
	}
	if b := s.proxy.cfg.SessionPushBudget; b > 0 && s.sendqBytes > 0 && s.sendqBytes >= b/2 {
		return
	}
	items := s.parked
	s.parked = nil
	for i, it := range items {
		if len(s.parked) > 0 {
			// Admission started parking again: keep the rest parked in order
			// without re-counting them as new deferrals.
			s.parked = append(s.parked, items[i:]...)
			break
		}
		s.admitOneLocked(it)
	}
}

// admitOneLocked re-admits a single previously-deferred item. Unlike
// admitLocked it does not re-count a parked item as a new deferral.
func (s *session) admitOneLocked(it sched.Item) {
	if s.mux != nil {
		s.admitMuxItemLocked(it, false)
		return
	}
	payload := mhtml.Encode([]mhtml.Part{{URL: it.URL, ContentType: it.ContentType, Status: it.Status, Body: it.Body}})
	n := int64(len(payload))
	if b := s.proxy.cfg.SessionPushBudget; b > 0 && s.sendqBytes > 0 && s.sendqBytes+n > b {
		s.parked = append(s.parked, it)
		return
	}
	if !s.proxy.reserve(n) {
		if s.sendqBytes > 0 {
			s.parked = append(s.parked, it)
		} else {
			s.shedLocked([]sched.Item{it})
		}
		return
	}
	s.pushed++
	s.pushedBytes += int64(len(it.Body))
	s.sendqBytes += n
	s.enqueueLocked(outFrame{typ: TBundle, payload: payload, reserved: n})
}

// serveFallback answers a missing-object request from the session's view or
// the origin. With the shared cache enabled the body is re-resolved through
// it (a hit for anything recently pushed).
func (s *session) serveFallback(url string) {
	s.mu.Lock()
	obj, ok := s.cache[url]
	s.mu.Unlock()
	if !ok || (obj.Body == nil && obj.Status < 400) {
		body, ct, status, err := s.fetchURL(url)
		if err != nil {
			s.proxy.cfg.Logf("fallback fetch %s: %v", url, err)
			status = 502
		}
		if ok && obj.Body == nil {
			// The session saw this object before; serve the cached identity's
			// content type when the refetch lost it.
			if ct == "" {
				ct = obj.ContentType
			}
		}
		obj = Object{URL: url, ContentType: ct, Status: status, Body: body}
		s.mu.Lock()
		s.storeLocked(obj)
		s.mu.Unlock()
	}
	enc := mhtml.Encode([]mhtml.Part{{URL: obj.URL, ContentType: obj.ContentType, Status: obj.Status, Body: obj.Body}})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.enqueueLocked(outFrame{typ: TObjectResponse, payload: enc})
	s.mu.Unlock()
}
