package parcelnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestMultiTenantSharedCache drives a fleet of concurrent sessions through
// one sharded proxy with the cross-session cache enabled: every session
// completes with the full object set, yet the origin is fetched once per URL
// — the fleet's total origin bytes equal one copy of the page, and every
// session beyond the flight group reports cache hits.
func TestMultiTenantSharedCache(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
		Shards:      4,
		CacheBytes:  1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const tenants = 12
	notes := make([]CompleteNote, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(proxy.Addr(), nil)
			if err != nil {
				errs[id] = err
				return
			}
			defer client.Close()
			if err := client.RequestPage(mainURL, "", ""); err != nil {
				errs[id] = err
				return
			}
			note, err := client.WaitComplete(15 * time.Second)
			if err != nil {
				errs[id] = err
				return
			}
			if got := len(client.Objects()); got != archive.Len() {
				t.Errorf("tenant %d received %d objects, want %d", id, got, archive.Len())
			}
			notes[id] = note
		}(i)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", id, err)
		}
	}

	// Purity + dedup: the origin served each URL exactly once across the
	// fleet, so the summed per-session origin bytes equal one page copy.
	var originBytes int64
	var hits int
	for _, n := range notes {
		originBytes += n.OriginBytes
		hits += n.CacheHits
	}
	if originBytes != archive.TotalBytes() {
		t.Errorf("fleet origin bytes = %d, want exactly one page copy = %d", originBytes, archive.TotalBytes())
	}
	if hits == 0 {
		t.Error("no session reported a cache hit across 12 tenants of one page")
	}
	if got := int(origin.Requests()); got != archive.Len() {
		t.Errorf("origin served %d requests, want %d (one per object)", got, archive.Len())
	}
	st := proxy.CacheStats()
	if st.Hits+st.Shared == 0 {
		t.Errorf("cache never shared anything: %+v", st)
	}
	if proxy.SessionsServed() != tenants {
		t.Errorf("sessions served = %d, want %d", proxy.SessionsServed(), tenants)
	}
	// All clients closed: every shard reaps its sessions.
	waitFor(t, 5*time.Second, func() bool { return proxy.Sessions() == 0 })
}

// TestMultiTenantKillSubsetSurvivorsComplete kills a subset of tenants
// mid-page (netem KillAfterBytes on their connections) while the rest load
// normally: survivors complete with the full object set, the killed sessions'
// proxy state is reaped by their shards, and nothing leaks.
func TestMultiTenantKillSubsetSurvivorsComplete(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
		Shards:      4,
		CacheBytes:  1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const tenants = 8
	const victims = 3 // tenants 0..2 die mid-page
	killDial := func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		// The page is ~17 KB; 2 KB guarantees the kill lands mid-push.
		return netem.Wrap(conn, netem.Params{KillAfterBytes: 2000}), nil
	}
	var wg sync.WaitGroup
	killedErrs := make([]error, victims)
	survivorErrs := make([]error, tenants-victims)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cfg := ClientConfig{}
			if id < victims {
				cfg.Dial = killDial
				cfg.MaxRetries = -1 // killed tenants stay dead
			}
			client, err := DialConfig(proxy.Addr(), cfg)
			if err != nil {
				t.Errorf("tenant %d dial: %v", id, err)
				return
			}
			defer client.Close()
			if err := client.RequestPage(mainURL, "", ""); err != nil {
				t.Errorf("tenant %d request: %v", id, err)
				return
			}
			_, err = client.WaitComplete(15 * time.Second)
			if id < victims {
				killedErrs[id] = err
			} else {
				survivorErrs[id-victims] = err
				if err == nil && len(client.Objects()) != archive.Len() {
					t.Errorf("survivor %d received %d objects, want %d", id, len(client.Objects()), archive.Len())
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range killedErrs {
		if err == nil {
			t.Errorf("victim %d completed despite the injected kill", i)
		}
	}
	for i, err := range survivorErrs {
		if err != nil {
			t.Errorf("survivor %d failed: %v", i+victims, err)
		}
	}
	// Dead and closed sessions alike are reaped from their shards.
	waitFor(t, 5*time.Second, func() bool { return proxy.Sessions() == 0 })
	total := 0
	for _, n := range proxy.ShardSessions() {
		total += n
	}
	if total != 0 {
		t.Errorf("shard registries still hold %d sessions", total)
	}
}

// TestShardDistribution checks that concurrent sessions actually land on
// multiple shards (the hash spreads by client port) and that the per-shard
// counts sum to the session total.
func TestShardDistribution(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, _ := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr: origin.Addr(),
		Sched:      sched.ConfigIND,
		Shards:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const tenants = 32
	clients := make([]*Client, 0, tenants)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < tenants; i++ {
		c, err := Dial(proxy.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	waitFor(t, 5*time.Second, func() bool { return proxy.Sessions() == tenants })
	counts := proxy.ShardSessions()
	sum, occupied := 0, 0
	for _, n := range counts {
		sum += n
		if n > 0 {
			occupied++
		}
	}
	if sum != tenants {
		t.Fatalf("shard counts %v sum to %d, want %d", counts, sum, tenants)
	}
	if occupied < 2 {
		t.Fatalf("all %d sessions hashed onto one shard: %v", tenants, counts)
	}
}
