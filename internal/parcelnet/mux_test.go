package parcelnet

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// muxFrameInfo parses a preassembled frame from muxSender.nextFrame.
type muxFrameInfo struct {
	typ   byte
	id    uint32
	flags byte
}

func parseMuxFrame(t *testing.T, frame []byte) muxFrameInfo {
	t.Helper()
	if len(frame) < 10 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	n := binary.BigEndian.Uint32(frame[1:5])
	if int(n) != len(frame)-5 {
		t.Fatalf("frame length header %d, actual payload %d", n, len(frame)-5)
	}
	return muxFrameInfo{typ: frame[0], id: binary.BigEndian.Uint32(frame[5:9]), flags: frame[9]}
}

// TestMuxPrioritySchedulerCriticalFirst pins the scheduler order at the unit
// level: a bulk stream admitted BEFORE a critical one still drains after it —
// every critical frame (open through END) precedes the first bulk frame.
func TestMuxPrioritySchedulerCriticalFirst(t *testing.T) {
	m := newMuxSender(32, 1<<20, 1<<20)
	bulk := m.add("http://a.test/hero.png", "image/png", 200, make([]byte, 64), 0, 64)
	crit := m.add("http://a.test/main.css", "text/css", 200, make([]byte, 64), 0, 64)
	if bulk.class != muxClassBulk || crit.class != muxClassCritical {
		t.Fatalf("classes: bulk=%d crit=%d", bulk.class, crit.class)
	}
	var order []muxFrameInfo
	for {
		frame, _, ok := m.nextFrame()
		if !ok {
			break
		}
		order = append(order, parseMuxFrame(t, frame))
	}
	// crit: open + two 32-byte chunks; bulk the same, strictly afterwards.
	if len(order) != 6 {
		t.Fatalf("got %d frames, want 6: %+v", len(order), order)
	}
	for i, f := range order[:3] {
		if f.id != crit.id {
			t.Fatalf("frame %d belongs to stream %d, want critical %d (%+v)", i, f.id, crit.id, order)
		}
	}
	if order[2].flags&muxFlagEnd == 0 {
		t.Fatal("critical stream not finished before bulk started")
	}
	for i, f := range order[3:] {
		if f.id != bulk.id {
			t.Fatalf("frame %d belongs to stream %d, want bulk %d", i+3, f.id, bulk.id)
		}
	}
	if m.live != 0 || m.pendingBytes() != 0 {
		t.Fatalf("scheduler not drained: live=%d pending=%d", m.live, m.pendingBytes())
	}
}

// TestMuxBulkNotStarved pins the weighted round robin's other half: with a
// long-lived critical stream and a bulk stream both eligible, the bulk stream
// gets one turn per muxCriticalWeight critical sends instead of waiting for
// the critical queue to empty.
func TestMuxBulkNotStarved(t *testing.T) {
	m := newMuxSender(16, 1<<20, 1<<20)
	m.add("http://a.test/app.js", "application/javascript", 200, make([]byte, 16*muxCriticalWeight*3), 0, int64(16*muxCriticalWeight*3))
	bulk := m.add("http://a.test/hero.png", "image/png", 200, make([]byte, 16), 0, 16)
	sawBulk := -1
	for i := 0; ; i++ {
		frame, _, ok := m.nextFrame()
		if !ok {
			break
		}
		if parseMuxFrame(t, frame).id == bulk.id {
			sawBulk = i
			break
		}
	}
	if sawBulk < 0 {
		t.Fatal("bulk stream never scheduled")
	}
	if sawBulk > muxCriticalWeight+2 {
		t.Fatalf("bulk first scheduled at frame %d — starved past the %d:1 weight", sawBulk, muxCriticalWeight)
	}
}

// TestMuxZeroWindowStreamNeverWrites is the flow-control strictness contract:
// a stream with no window emits nothing — not even its open frame — and a
// WINDOW_UPDATE credit unblocks it.
func TestMuxZeroWindowStreamNeverWrites(t *testing.T) {
	m := newMuxSender(32, 1<<20, 1<<20)
	s := m.add("http://a.test/x.bin", "application/octet-stream", 200, make([]byte, 100), 0, 100)
	s.window = 0
	if _, _, ok := m.nextFrame(); ok {
		t.Fatal("zero-window stream produced a frame")
	}
	m.credit(s.id, 40)
	frame, _, ok := m.nextFrame()
	if !ok {
		t.Fatal("credited stream still blocked")
	}
	if f := parseMuxFrame(t, frame); f.typ != TStreamOpen {
		t.Fatalf("first frame type %d, want open", f.typ)
	}
	// The 40-byte credit covers 40 of 100 body bytes: two 32/8-byte chunks,
	// then blocked again.
	var sent int
	for {
		frame, n, ok := m.nextFrame()
		if !ok {
			break
		}
		if f := parseMuxFrame(t, frame); f.typ != TStreamData {
			t.Fatalf("unexpected type %d", f.typ)
		}
		sent += n
	}
	if sent != 40 {
		t.Fatalf("stream sent %d bytes on a 40-byte window", sent)
	}
	if s.window != 0 {
		t.Fatalf("window = %d after exhausting credit", s.window)
	}
	// Connection-level credit (id 0) alone must not unblock a stream whose
	// own window is empty.
	m.credit(0, 1<<20)
	if _, _, ok := m.nextFrame(); ok {
		t.Fatal("stream wrote without stream-level credit")
	}
	m.credit(s.id, 1<<20)
	for {
		if _, _, ok := m.nextFrame(); !ok {
			break
		}
	}
	if m.live != 0 {
		t.Fatalf("live = %d after drain", m.live)
	}
}

// TestMuxConnWindowGatesAllStreams: an exhausted connection-level window
// blocks data on every stream even when stream windows have credit.
func TestMuxConnWindowGatesAllStreams(t *testing.T) {
	m := newMuxSender(32, 1<<20, 48)
	m.add("http://a.test/a.bin", "application/octet-stream", 200, make([]byte, 100), 0, 100)
	m.add("http://a.test/b.bin", "application/octet-stream", 200, make([]byte, 100), 0, 100)
	var sent int
	opens := 0
	for {
		frame, n, ok := m.nextFrame()
		if !ok {
			break
		}
		if parseMuxFrame(t, frame).typ == TStreamOpen {
			opens++
		}
		sent += n
	}
	if sent != 48 {
		t.Fatalf("sent %d data bytes on a 48-byte connection window", sent)
	}
	if opens != 2 {
		t.Fatalf("opens = %d, want 2 (opens are window-free)", opens)
	}
	m.credit(0, 1000)
	sent = 0
	for {
		_, n, ok := m.nextFrame()
		if !ok {
			break
		}
		sent += n
	}
	if sent != 152 {
		t.Fatalf("post-credit drain sent %d, want remaining 152", sent)
	}
}

// TestMetaRoundTrip exercises the HPACK-lite codec: same-origin URLs shrink
// to prefix-indexed form and everything decodes back bit-exact.
func TestMetaRoundTrip(t *testing.T) {
	var enc MetaEncoder
	var dec MetaDecoder
	cases := []struct {
		url, ct string
		status  int
	}{
		{"http://www.shop.test/index.html", "text/html", 200},
		{"http://www.shop.test/main.css", "text/css", 200},
		{"http://cdn.shop.test/app.js", "application/javascript", 200},
		{"http://cdn.shop.test/very/deep/path/img.png", "image/png", 200},
		{"http://www.shop.test/hero.jpg", "image/jpeg", 404},
		{"no-scheme-url", "application/x-custom", 301},
	}
	var firstLen, secondLen int
	for i, c := range cases {
		buf := enc.AppendMeta(nil, c.url, c.ct, c.status)
		switch i {
		case 0:
			firstLen = len(buf)
		case 1:
			secondLen = len(buf)
		}
		url, ct, status, rest, err := dec.ReadMeta(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if url != c.url || ct != c.ct || status != c.status || len(rest) != 0 {
			t.Fatalf("case %d round-trip: got (%q,%q,%d) rest=%d", i, url, ct, status, len(rest))
		}
	}
	// The second shop.test URL rides the dynamic table: strictly smaller than
	// a literal encoding of the same-length URL would be.
	if secondLen >= firstLen {
		t.Fatalf("no prefix compression: first=%d second=%d", firstLen, secondLen)
	}
	// Truncated metadata must error, never panic.
	full := enc.AppendMeta(nil, "http://x.test/a", "text/html", 200)
	for i := 0; i < len(full); i++ {
		var d2 MetaDecoder
		if _, _, _, _, err := d2.ReadMeta(full[:i]); err == nil && i < len(full)-1 {
			_ = err // prefixes may parse when a shorter valid encoding exists
		}
	}
}

// TestMuxEndToEnd is the stream-layer analogue of TestEndToEndPageLoad: a
// mux client gets every object byte-exact, and — the §4.5 barrier — the
// completion note arrives only after every stream has fully drained.
func TestMuxEndToEnd(t *testing.T) {
	proxyAddr, mainURL, archive := startStack(t, sched.ConfigIND)
	client, err := DialConfig(proxyAddr, ClientConfig{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "parcel-test/1.0", "720x1280"); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsPushed != archive.Len() {
		t.Fatalf("pushed %d objects, archive has %d (received: %v)",
			note.ObjectsPushed, archive.Len(), client.Objects())
	}
	// Completion is a barrier: every pushed object is already resident.
	if got := len(client.Objects()); got != archive.Len() {
		t.Fatalf("complete arrived with %d/%d objects resident", got, archive.Len())
	}
	for _, u := range archive.URLs() {
		p, err := client.Object(u, time.Second)
		if err != nil {
			t.Fatalf("missing %s: %v", u, err)
		}
		want, _ := archive.Get(u)
		if !bytes.Equal(p.Body, want.Body) {
			t.Fatalf("object %s corrupted in transit (%d vs %d bytes)", u, len(p.Body), len(want.Body))
		}
	}
	if client.BundlesReceived != 0 {
		t.Fatalf("mux session received %d legacy bundles", client.BundlesReceived)
	}
	if client.FirstCriticalAt.IsZero() {
		t.Fatal("no first-critical timestamp recorded")
	}
	if client.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0", client.Fallbacks)
	}
}

// TestMuxGatedCriticalCompletesBeforeBulk is the deterministic end-to-end
// priority test: the session's conn is gated shut while the ONLD flush admits
// the whole page atomically, so when the gate opens the scheduler alone
// decides delivery order — and every render-blocking object must complete
// before any image.
func TestMuxGatedCriticalCompletesBeforeBulk(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	g := newGate()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigONLD,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
		WrapConn:    func(c net.Conn) net.Conn { return &gatedConn{Conn: c, g: g} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	defer g.Open()

	client, err := DialConfig(proxy.Addr(), ClientConfig{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	// The ONLD flush admits every onload-visible object under one lock hold;
	// QueuedBytes going nonzero means the admission already happened (the
	// writer is still stuck on the gate, holding the settings frame).
	waitFor(t, 10*time.Second, func() bool { return proxy.QueuedBytes() > 0 })
	g.Open()
	if _, err := client.WaitComplete(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	order := client.Objects()
	if len(order) < archive.Len()-1 {
		t.Fatalf("only %d objects arrived: %v", len(order), order)
	}
	lastCritical, firstBulk := -1, -1
	for i, u := range order {
		// Classify by the received part's content type: script execution on
		// the proxy can discover objects (dynamic fetches) that are not in
		// the static archive.
		obj, err := client.Object(u, time.Second)
		if err != nil {
			t.Fatalf("received object %s not retrievable: %v", u, err)
		}
		if prioClass(obj.ContentType) == muxClassCritical {
			lastCritical = i
		} else if firstBulk == -1 {
			firstBulk = i
		}
	}
	if lastCritical == -1 || firstBulk == -1 {
		t.Fatalf("page lacks both classes: %v", order)
	}
	if firstBulk < lastCritical {
		t.Fatalf("bulk object completed at %d before critical at %d: %v", firstBulk, lastCritical, order)
	}
}

// TestMuxSmallWindowsFlowControl forces heavy WINDOW_UPDATE traffic: windows
// far below the page size mean the proxy repeatedly exhausts both levels and
// only the client's credits keep data flowing. The page must still arrive
// complete and byte-exact.
func TestMuxSmallWindowsFlowControl(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(8, 16<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:      origin.Addr(),
		Sched:           sched.ConfigIND,
		QuietPeriod:     300 * time.Millisecond,
		MuxChunkSize:    1 << 10,
		MuxStreamWindow: 4 << 10,
		MuxConnWindow:   8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	client, err := DialConfig(proxy.Addr(), ClientConfig{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsPushed != archive.Len() {
		t.Fatalf("pushed %d, want %d", note.ObjectsPushed, archive.Len())
	}
	for _, u := range archive.URLs() {
		p, err := client.Object(u, time.Second)
		if err != nil {
			t.Fatalf("missing %s: %v", u, err)
		}
		want, _ := archive.Get(u)
		if !bytes.Equal(p.Body, want.Body) {
			t.Fatalf("object %s corrupted under flow control", u)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return proxy.QueuedBytes() == 0 })
}

// TestMuxReconnectResumesMidStream kills the connection partway through a
// large object push (netem KillAfterBytes): the client must reconnect with a
// partial manifest, the proxy must reopen the stream at the recorded offset,
// and the reassembled object must be byte-exact — the §4.5 resume extended
// below object granularity.
func TestMuxReconnectResumesMidStream(t *testing.T) {
	defer leakcheck.Check(t)()
	const bigSize = 256 << 10
	const main = "http://resume.test/index.html"
	archive := replay.NewArchive()
	archive.Record(httpsim.Object{URL: main, ContentType: "text/html",
		Body: []byte(`<!DOCTYPE html><html><body><img src="/big.png"></body></html>`)})
	bigBody := bytes.Repeat([]byte("R"), bigSize)
	archive.Record(httpsim.Object{URL: "http://resume.test/big.png", ContentType: "image/png", Body: bigBody})

	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Only the first connection dies; the reconnect runs clean.
	dials := 0
	cfg := fastRecovery()
	cfg.Mux = true
	cfg.Dial = func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			return netem.Wrap(conn, netem.Params{KillAfterBytes: 40 << 10}), nil
		}
		return conn, nil
	}
	client, err := DialConfig(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(main, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if client.Resumes == 0 {
		t.Fatal("connection was never killed/resumed — test setup broken")
	}
	if client.PartialResumes == 0 {
		t.Fatalf("no mid-stream resume recorded (resumes=%d, note=%+v)", client.Resumes, note)
	}
	if note.ObjectsResumed == 0 {
		t.Fatalf("proxy note reports no resumed streams: %+v", note)
	}
	p, err := client.Object("http://resume.test/big.png", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Body, bigBody) {
		t.Fatalf("resumed object corrupted: got %d bytes, want %d", len(p.Body), len(bigBody))
	}
}

// TestMuxAssemblerRejectsCorruptFrames pins the decoder's failure mode:
// corrupt frames produce errors, never panics or silent corruption.
func TestMuxAssemblerRejectsCorruptFrames(t *testing.T) {
	a := newMuxAssembler(func(string) []byte { return nil })
	if err := a.onSettings([]byte{1, 2}); err == nil {
		t.Fatal("short settings accepted")
	}
	if _, err := a.onOpen([]byte{0, 0, 0, 1, 0}); err == nil {
		t.Fatal("short open accepted")
	}
	if _, _, err := a.onData([]byte{0, 0}); err == nil {
		t.Fatal("short data accepted")
	}
	if _, _, err := a.onData([]byte{0, 0, 0, 9, 0, 'x'}); err == nil {
		t.Fatal("data for unknown stream accepted")
	}
	// A stream that overflows its declared size must error.
	var enc MetaEncoder
	open := binary.BigEndian.AppendUint32(nil, 7)
	open = append(open, 0, byte(muxClassBulk))
	open = binary.AppendUvarint(open, 0) // offset
	open = binary.AppendUvarint(open, 4) // total
	open = enc.AppendMeta(open, "http://x.test/a.bin", "application/octet-stream", 200)
	if _, err := a.onOpen(open); err != nil {
		t.Fatal(err)
	}
	data := binary.BigEndian.AppendUint32(nil, 7)
	data = append(data, 0)
	data = append(data, []byte("12345")...) // 5 > declared 4
	if _, _, err := a.onData(data); err == nil {
		t.Fatal("overflowing stream accepted")
	}
}

// TestMuxResumeOffsetMismatch: a proxy reopening a stream at an offset the
// client does not hold must produce a protocol error, not corrupt data.
func TestMuxResumeOffsetMismatch(t *testing.T) {
	a := newMuxAssembler(func(string) []byte { return []byte("12") })
	var enc MetaEncoder
	open := binary.BigEndian.AppendUint32(nil, 1)
	open = append(open, 0, byte(muxClassBulk))
	open = binary.AppendUvarint(open, 8)  // offset the client cannot cover
	open = binary.AppendUvarint(open, 16) // total
	open = enc.AppendMeta(open, "http://x.test/a.bin", "application/octet-stream", 200)
	if _, err := a.onOpen(open); err == nil {
		t.Fatal("offset mismatch accepted")
	}
}

// TestFrameBufPool pins the recycling contract: released buffers come back
// on the next same-bucket grab, foreign slices are dropped silently, and
// zero-length grabs cost nothing.
func TestFrameBufPool(t *testing.T) {
	if b := grabFrameBuf(0); b != nil {
		t.Fatalf("zero grab returned %d bytes", len(b))
	}
	buf := grabFrameBuf(1000)
	if len(buf) != 1000 || cap(buf) != 1024 {
		t.Fatalf("grab(1000): len=%d cap=%d", len(buf), cap(buf))
	}
	buf[0] = 0xAB
	ReleaseFrameBuf(buf)
	again := grabFrameBuf(700) // same 1 KB bucket: must come back recycled
	if cap(again) != 1024 {
		t.Fatalf("recycled grab cap=%d, want 1024", cap(again))
	}
	ReleaseFrameBuf(again)
	// Foreign capacities are rejected without effect.
	ReleaseFrameBuf(make([]byte, 777))
	ReleaseFrameBuf(nil)
}

// TestMuxLoadgenSmoke runs the fleet harness end to end over the stream
// layer, gating the new counters: nonzero TTFC percentiles, zero failures,
// zero silently-lost fallbacks.
func TestMuxLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke is not -short")
	}
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	res, err := RunLoadgen(LoadgenConfig{
		Clients:     8,
		Store:       replay.Rewriting{Store: archive},
		URLs:        []string{mainURL},
		Sched:       sched.ConfigONLD,
		Shards:      2,
		CacheBytes:  8 << 20,
		QuietPeriod: 200 * time.Millisecond,
		FixedRandom: true,
		Mux:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Failed != 0 {
		t.Fatalf("failed sessions: %d", res.Report.Failed)
	}
	if res.Report.TTFCP99 <= 0 {
		t.Fatalf("no TTFC percentiles under mux: %+v", res.Report)
	}
	if res.Report.TTFCP50 > res.Report.P50 {
		t.Fatalf("TTFC p50 %v above completion p50 %v", res.Report.TTFCP50, res.Report.P50)
	}
	if res.Report.FallbackWriteErrors != 0 {
		t.Fatalf("silent fallback write failures: %d", res.Report.FallbackWriteErrors)
	}
}

// TestWireBenchAllocFree pins the steady-state mux data path at (amortized)
// zero allocations per frame: the sender reuses its scratch buffer and the
// assembler appends into the body buffer preallocated at stream open. The
// per-cycle stream setup amortizes across the cycle's frames, so anything
// near one alloc per op means the per-chunk path regressed. parcel-bench
// gates the same property in BENCH_hotpath.json; this test catches it in
// plain `go test`.
func TestWireBenchAllocFree(t *testing.T) {
	wb := NewWireBench(1<<20, 16<<10)
	if avg := testing.AllocsPerRun(1000, func() { wb.EncodeStep() }); avg > 0.5 {
		t.Errorf("EncodeStep allocates %.2f/op, want amortized 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := wb.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.5 {
		t.Errorf("DecodeStep allocates %.2f/op, want amortized 0", avg)
	}
}

// TestMuxReorderedOpensKeepMetaTablesInSync is the regression test for the
// HPACK-lite desync found under 200-tenant load: the bundler queues a bulk
// image (origin A) before a critical stylesheet (origin B), but the priority
// scheduler emits the stylesheet's open first. The encoder must insert
// dynamic-table prefixes in emission order — the order the decoder sees —
// or every later indexed URL resolves to the wrong origin.
func TestMuxReorderedOpensKeepMetaTablesInSync(t *testing.T) {
	m := newMuxSender(64, 1<<20, 1<<20)
	m.add("http://cdn-a.test/hero.png", "image/png", 200, []byte("PNG"), 0, 3)
	m.add("http://cdn-b.test/app.css", "text/css", 200, []byte("b{}"), 0, 3)
	// Second objects from each origin take the indexed path.
	m.add("http://cdn-a.test/thumb.png", "image/png", 200, []byte("png"), 0, 3)
	m.add("http://cdn-b.test/site.css", "text/css", 200, []byte("i{}"), 0, 3)

	a := newMuxAssembler(func(string) []byte { return nil })
	if err := a.onSettings(m.settingsPayload()); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for {
		frame, _, ok := m.nextFrame()
		if !ok {
			break
		}
		payload := frame[5:]
		switch frame[0] {
		case TStreamOpen:
			if _, err := a.onOpen(payload); err != nil {
				t.Fatalf("open rejected: %v", err)
			}
		case TStreamData:
			part, _, err := a.onData(payload)
			if err != nil {
				t.Fatalf("data rejected: %v", err)
			}
			if part != nil {
				got[part.URL] = true
			}
		}
	}
	for _, u := range []string{
		"http://cdn-a.test/hero.png", "http://cdn-b.test/app.css",
		"http://cdn-a.test/thumb.png", "http://cdn-b.test/site.css",
	} {
		if !got[u] {
			t.Errorf("object %s never assembled (URL decoded against a desynced table?)", u)
		}
	}
}
