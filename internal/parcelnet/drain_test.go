package parcelnet

import (
	"net"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestDrainIdleSessionHandsOff drains a proxy whose only session already
// completed its page: the session gets a TDrain notice with nothing pending,
// the client hangs up without treating it as a failure, and the drain returns
// with every goroutine gone.
func TestDrainIdleSessionHandsOff(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitComplete(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := proxy.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if proxy.Sessions() != 0 {
		t.Errorf("%d sessions registered after drain", proxy.Sessions())
	}
	if proxy.DrainedSessions() != 1 {
		t.Errorf("DrainedSessions = %d, want 1", proxy.DrainedSessions())
	}
	waitFor(t, 5*time.Second, func() bool {
		client.mu.Lock()
		defer client.mu.Unlock()
		return client.Drained == 1
	})
	load := client.SessionLoad(0)
	if !load.Completed {
		t.Error("completed session reads as failed after drain")
	}
	if !load.Drained {
		t.Error("SessionLoad does not tag the drain")
	}
}

// TestDrainMidPageResumesOnRestartedProxy drains the proxy out from under a
// live session (the quiet period keeps it busy past the drain deadline), then
// restarts a proxy on the same address: the client folds the TDrain notice
// into its reconnect machinery and resumes the session with its manifest, so
// the page completes with zero lost objects.
func TestDrainMidPageResumesOnRestartedProxy(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	// The long quiet period pins the session busy (never complete) so the
	// drain deadline expires and the mid-page handoff path runs.
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: time.Hour,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := proxy.Addr()

	client, err := DialConfig(addr, ClientConfig{MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	// Let the push phase land something first so the resume manifest is real.
	waitFor(t, 10*time.Second, func() bool { return len(client.Objects()) > 0 })

	if err := proxy.Drain(200 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	proxy.Close()

	proxy2, err := StartProxy(addr, ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer proxy2.Close()

	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatalf("page never completed after drain/restart: %v", err)
	}
	client.mu.Lock()
	drained, resumes := client.Drained, client.Resumes
	client.mu.Unlock()
	if drained != 1 {
		t.Errorf("Drained = %d, want 1", drained)
	}
	if resumes == 0 {
		t.Error("session never resumed on the restarted proxy")
	}
	if note.ObjectsSkipped == 0 {
		t.Error("resume manifest skipped nothing: the handoff re-pushed everything")
	}
	for _, u := range archive.URLs() {
		if _, err := client.Object(u, 10*time.Second); err != nil {
			t.Fatalf("object %s lost across the drain: %v", u, err)
		}
	}
	if !client.SessionLoad(0).Drained {
		t.Error("SessionLoad does not tag the drain")
	}
}

// TestDrainMidPageFallsBackToDirect is the no-restart arm: the proxy drains
// away mid-page and never comes back, so the reconnect budget burns out and
// the client degrades to its direct-origin path — the page still completes in
// full.
func TestDrainMidPageFallsBackToDirect(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: time.Hour, // the session never goes idle on its own
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	client, err := DialConfig(proxy.Addr(), ClientConfig{
		MaxRetries:   2,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		DirectOrigin: origin.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return len(client.Objects()) > 0 })

	if err := proxy.Drain(100 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	proxy.Close()

	if _, err := client.WaitComplete(15 * time.Second); err != nil {
		t.Fatalf("drained client never completed: %v", err)
	}
	if !client.Degraded() {
		t.Error("client did not degrade with the proxy gone for good")
	}
	for _, u := range archive.URLs() {
		if _, err := client.Object(u, 10*time.Second); err != nil {
			t.Fatalf("object %s lost: %v", u, err)
		}
	}
	load := client.SessionLoad(0)
	if !load.Completed || !load.Drained {
		t.Errorf("want completed+drained sample, got %+v", load)
	}
}

// TestShedToDirectUnderMuxStreams pins admission control's shed path while
// mux streams are live: the client's link is gated shut, so early streams sit
// open with unsent bytes while the session budget parks the rest; completion
// sheds the parked tail to the client's direct-origin path. Deterministic —
// the gate, not kernel buffers, decides what is in flight when the shed
// happens.
func TestShedToDirectUnderMuxStreams(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(8, 32<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	g := newGate()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:        origin.Addr(),
		Sched:             sched.ConfigIND,
		QuietPeriod:       300 * time.Millisecond,
		SessionPushBudget: 48 << 10, // roughly the shell plus one image
		WrapConn:          func(c net.Conn) net.Conn { return &gatedConn{Conn: c, g: g} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	defer g.Open()

	client, err := DialConfig(proxy.Addr(), ClientConfig{
		Mux:          true,
		DirectOrigin: origin.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}

	// With the gate shut nothing reaches the client, so the shed must happen
	// while the admitted streams are still live (unsent bytes queued).
	waitFor(t, 10*time.Second, func() bool { return proxy.ShedTotal() > 0 })
	live := 0
	for _, s := range proxy.activeSessions() {
		s.mu.Lock()
		if s.mux != nil {
			live += s.mux.live
		}
		s.mu.Unlock()
	}
	if live == 0 {
		t.Error("shed happened with no live mux streams: the gate did not hold them open")
	}

	g.Open()
	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsShed == 0 {
		t.Fatalf("nothing shed: %+v", note)
	}
	if note.ObjectsPushed == 0 {
		t.Fatalf("nothing pushed: the test wants shed and live streams to coexist: %+v", note)
	}
	for _, u := range archive.URLs() {
		if _, err := client.Object(u, 10*time.Second); err != nil {
			t.Fatalf("shed object %s unreachable: %v", u, err)
		}
	}
	if client.DirectFetches == 0 {
		t.Error("no direct fetches despite shed objects and a configured origin")
	}
}
