package parcelnet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrame hammers the pooled frame reader with arbitrary byte streams:
// corrupt length prefixes, truncated headers, and short payloads must all
// surface as errors — never panics — and anything that does parse must
// round-trip bit-exact through WriteFrame.
func FuzzFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, TBundle, []byte("hello"))
	f.Add(seed.Bytes())
	seed.Reset()
	WriteFrame(&seed, TStreamData, append(binary.BigEndian.AppendUint32(nil, 3), 0, 'x', 'y'))
	f.Add(seed.Bytes())
	f.Add([]byte{TBundle, 0xFF, 0xFF, 0xFF, 0xFF})          // over-limit length
	f.Add([]byte{TComplete, 0, 0, 0, 10, 'a', 'b'})         // truncated payload
	f.Add([]byte{})                                         // empty
	f.Add([]byte{TWindowUpdate, 0, 0, 0, 8, 0, 0, 0, 1, 0}) // short window update

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 5 {
			// Bound the declared length so the fuzzer cannot spend its budget
			// allocating tens of megabytes per exec; the over-limit rejection
			// is covered by the seed above.
			if n := binary.BigEndian.Uint32(data[1:5]); n > 8<<20 && n <= maxFrame {
				t.Skip()
			}
		}
		typ, payload, err := ReadFramePooled(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, typ, payload); werr != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:5+len(payload)]) {
			t.Fatalf("frame round-trip diverged")
		}
		ReleaseFrameBuf(payload)
	})
}

// FuzzMux drives the client-side stream assembler with arbitrary frame
// sequences: interleaved and duplicate stream IDs, corrupt metadata,
// truncated chunks, and bogus extents must error cleanly, and whatever does
// assemble must respect the declared object size. The seed corpus is a real
// sender's output so the valid path stays covered.
func FuzzMux(f *testing.F) {
	// Seed: a real two-stream interleaving produced by the sender.
	m := newMuxSender(8, 1<<20, 1<<20)
	m.add("http://seed.test/a.css", "text/css", 200, []byte("body{color:red}"), 0, 15)
	m.add("http://seed.test/b.png", "image/png", 200, bytes.Repeat([]byte("P"), 24), 0, 24)
	seq := [][]byte{append([]byte{TMuxSettings}, m.settingsPayload()...)}
	for {
		frame, _, ok := m.nextFrame()
		if !ok {
			break
		}
		// nextFrame returns [type][len][payload]; re-pack as type+payload.
		seq = append(seq, append([]byte{frame[0]}, frame[5:]...))
	}
	var stream bytes.Buffer
	for _, s := range seq {
		stream.Write(binary.BigEndian.AppendUint32(nil, uint32(len(s))))
		stream.Write(s)
	}
	f.Add(stream.Bytes())
	f.Add([]byte{0, 0, 0, 1, TStreamData})
	f.Add([]byte{0, 0, 0, 6, TStreamOpen, 0, 0, 0, 1, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		a := newMuxAssembler(func(string) []byte { return []byte("pp") })
		total := 0
		// The input is a sequence of length-prefixed (type, payload) records.
		for len(data) >= 4 && total < 1<<20 {
			n := int(binary.BigEndian.Uint32(data[:4]))
			data = data[4:]
			if n < 1 || n > len(data) {
				return
			}
			rec := data[:n]
			data = data[n:]
			typ, payload := rec[0], rec[1:]
			total += len(payload)
			switch typ {
			case TMuxSettings:
				if err := a.onSettings(payload); err != nil {
					return
				}
			case TStreamOpen:
				part, err := a.onOpen(payload)
				if err != nil {
					return
				}
				if part != nil && int64(len(part.Body)) > maxFrame {
					t.Fatalf("assembled part larger than any legal object: %d", len(part.Body))
				}
			case TStreamData:
				part, _, err := a.onData(payload)
				if err != nil {
					return
				}
				if part != nil && len(part.Body) == 0 && len(payload) > 5 {
					// END frames may close an empty stream, but a non-empty
					// chunk cannot vanish.
					t.Fatal("non-empty chunk assembled into empty body")
				}
			default:
				return
			}
		}
		// Harvesting partials must always be safe, whatever state fuzzing
		// left the assembler in.
		for u, b := range a.partials() {
			if u == "" || len(b) == 0 {
				t.Fatalf("degenerate partial %q (%d bytes)", u, len(b))
			}
		}
	})
}
