package parcelnet

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestChaosLoadgenSmoke is the CI-sized chaos run: a fleet loading through a
// faulted origin while the proxy drains and restarts under it. The gate is
// absolute — every session completes anyway — with the fault and drain
// counters proving the run actually hurt.
func TestChaosLoadgenSmoke(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	res, err := RunChaosLoadgen(ChaosConfig{
		Loadgen: LoadgenConfig{
			Clients:     40,
			Store:       replay.Rewriting{Store: archive},
			URLs:        []string{mainURL},
			Sched:       sched.ConfigONLD,
			Shards:      4,
			CacheBytes:  8 << 20,
			FixedRandom: true,
			Stagger:     10 * time.Millisecond,
		},
		// The flap guarantees the first crawl's fetches fail (retries carry
		// them past the window); the error rate keeps later fetches risky.
		Faults: replay.OriginFaults{
			ErrorRate: 0.1,
			Seed:      7,
			Flaps:     []replay.FlapWindow{{Start: 0, End: 80 * time.Millisecond}},
		},
		Resilience: resilience.Policy{
			MaxRetries:       3,
			BackoffBase:      20 * time.Millisecond,
			BackoffMax:       200 * time.Millisecond,
			FailureThreshold: 1 << 20, // errors are transient; keep the breaker quiet
		},
		// The drain fires while most of the staggered fleet is still mid-page.
		DrainAfter:   120 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Completed != 40 {
		t.Fatalf("%d/40 sessions completed (%d failed) under chaos", r.Completed, r.Failed)
	}
	if res.Faults.Total() == 0 {
		t.Error("origin injected no faults: the chaos run was not chaotic")
	}
	if res.DrainedSessions == 0 {
		t.Error("no session was handed a drain notice")
	}
	if r.Drained == 0 {
		t.Error("no fleet sample tags the drain")
	}
	if res.Resilience.Retries == 0 {
		t.Error("resilient fetch path never retried through the injected errors")
	}
	if len(r.PhaseP99) == 0 {
		t.Error("no per-phase percentiles: every session completed before the drain?")
	}
	if r.FallbackWriteErrors > 0 {
		t.Errorf("%d fallback writes silently failed", r.FallbackWriteErrors)
	}
}

// TestChaosLoadgenDrainOnly pins the restart handoff in isolation: no origin
// faults, just a drain and restart mid-run. Every session completes and at
// least one lives through the handoff (resume or DIR fallback).
func TestChaosLoadgenDrainOnly(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	res, err := RunChaosLoadgen(ChaosConfig{
		Loadgen: LoadgenConfig{
			Clients:     20,
			Store:       replay.Rewriting{Store: archive},
			URLs:        []string{mainURL},
			Sched:       sched.ConfigONLD,
			CacheBytes:  8 << 20,
			FixedRandom: true,
			Stagger:     10 * time.Millisecond,
			QuietPeriod: 400 * time.Millisecond,
		},
		DrainAfter:   250 * time.Millisecond,
		DrainTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Completed != 20 {
		t.Fatalf("%d/20 sessions completed (%d failed) across the drain", r.Completed, r.Failed)
	}
	if res.DrainedSessions == 0 {
		t.Error("the drain notified nobody")
	}
	if res.Faults.Total() != 0 {
		t.Errorf("faults injected in a fault-free run: %+v", res.Faults)
	}
	if res.SessionsServed < 20 {
		t.Errorf("sessions served = %d, want >= 20 (resumes add more)", res.SessionsServed)
	}
}
