//go:build !simdebug

package parcelnet

// Release-side double-free checks compile away in normal builds; the
// simdebug variants live in pooldebug_on.go.

func checkFrameBufGrab([]byte)    {}
func checkFrameBufRelease([]byte) {}
