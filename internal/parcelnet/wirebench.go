package parcelnet

import "fmt"

// WireBench exposes the parcelmux encode/decode hot path to parcel-bench so
// the steady-state per-frame cost can be gated at zero allocations per
// operation. The mux internals are deliberately unexported; this harness is
// the one sanctioned way to drive them from outside the package.
//
// EncodeStep cycles one sender over a fixed body: each call assembles the
// next frame into the sender's reusable scratch, and when the stream ends it
// is re-armed (and the connection window re-credited), so the amortized cost
// of a long run is the per-chunk cost a session writer pays. DecodeStep
// replays one pre-encoded stream cycle through an assembler the same way.
type WireBench struct {
	s    *muxSender
	a    *muxAssembler
	body []byte

	frames [][]byte // one full stream cycle, pre-encoded for decode replay
	next   int
}

const wireBenchURL = "https://bench.test/assets/hero.png"

// NewWireBench builds a harness pushing a bodyLen-byte object in chunk-byte
// frames. Windows are sized so flow control never stalls the cycle.
func NewWireBench(bodyLen, chunk int) *WireBench {
	wb := &WireBench{body: make([]byte, bodyLen)}
	for i := range wb.body {
		wb.body[i] = byte(i)
	}
	wb.s = newMuxSender(chunk, 1<<30, 1<<30)
	wb.arm()

	// Pre-encode one full cycle (copying out of the reused scratch) so the
	// decode benchmark measures only the assembler.
	enc := newMuxSender(chunk, 1<<30, 1<<30)
	enc.add(wireBenchURL, "image/png", 200, wb.body, 0, int64(len(wb.body)))
	for {
		f, _, ok := enc.nextFrame()
		if !ok {
			break
		}
		wb.frames = append(wb.frames, append([]byte(nil), f...))
	}
	wb.a = newMuxAssembler(func(string) []byte { return nil })
	if err := wb.a.onSettings(enc.settingsPayload()); err != nil {
		panic(err)
	}
	return wb
}

func (wb *WireBench) arm() {
	wb.s.add(wireBenchURL, "image/png", 200, wb.body, 0, int64(len(wb.body)))
}

// EncodeStep assembles the next outbound frame and returns its length,
// re-arming the stream (and refilling the connection window) when it ends.
func (wb *WireBench) EncodeStep() int {
	f, _, ok := wb.s.nextFrame()
	if !ok {
		wb.s.credit(0, uint32(len(wb.body)))
		wb.arm()
		if f, _, ok = wb.s.nextFrame(); !ok {
			panic("parcelnet: WireBench sender stalled with a live stream")
		}
	}
	return len(f)
}

// DecodeStep feeds the next pre-encoded frame to the assembler and returns
// the payload length.
func (wb *WireBench) DecodeStep() (int, error) {
	f := wb.frames[wb.next]
	if wb.next++; wb.next == len(wb.frames) {
		wb.next = 0
	}
	payload := f[5:]
	switch f[0] {
	case TStreamOpen:
		_, err := wb.a.onOpen(payload)
		return len(payload), err
	case TStreamData:
		_, _, err := wb.a.onData(payload)
		return len(payload), err
	}
	return 0, fmt.Errorf("parcelnet: WireBench cycle holds unexpected frame type %d", f[0])
}
