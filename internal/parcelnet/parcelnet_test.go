package parcelnet

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// testArchive builds a small page with every discovery mechanism: HTML refs,
// CSS url(), sync JS fetch, a short timer ad, and a randomized URL.
func testArchive() (*replay.Archive, string) {
	const main = "http://www.shop.test/index.html"
	a := replay.NewArchive()
	rec := func(url, ct, body string) {
		a.Record(httpsim.Object{URL: url, ContentType: ct, Body: []byte(body)})
	}
	rec(main, "text/html", `<!DOCTYPE html><html><head>
<link rel="stylesheet" href="/main.css">
<script src="http://cdn.shop.test/app.js"></script>
</head><body>
<script>
setTimeout(120, function() { fetch("http://ads.test/late.png"); });
fetch("http://ads.test/pixel?r=" + rand(10));
</script>
<img src="/hero.jpg">
</body></html>`)
	rec("http://www.shop.test/main.css", "text/css", `body { background: url(/bg.png); }`)
	rec("http://www.shop.test/bg.png", "image/png", strings.Repeat("B", 4000))
	rec("http://www.shop.test/hero.jpg", "image/jpeg", strings.Repeat("H", 9000))
	rec("http://cdn.shop.test/app.js", "application/javascript", `fetch("http://cdn.shop.test/dyn.png");`)
	rec("http://cdn.shop.test/dyn.png", "image/png", strings.Repeat("D", 2500))
	rec("http://ads.test/late.png", "image/png", strings.Repeat("L", 1200))
	rec("http://ads.test/pixel?r=4", "image/gif", "PIX")
	return a, main
}

// startStack brings up origin + proxy and returns the proxy address plus a
// cleanup-registered origin.
func startStack(t *testing.T, cfg sched.Config) (proxyAddr, mainURL string, archive *replay.Archive) {
	t.Helper()
	archive, mainURL = testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { origin.Close() })
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       cfg,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return proxy.Addr(), mainURL, archive
}

func TestEndToEndPageLoad(t *testing.T) {
	proxyAddr, mainURL, archive := startStack(t, sched.ConfigIND)
	client, err := Dial(proxyAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "parcel-test/1.0", "720x1280"); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsPushed != archive.Len() {
		t.Fatalf("pushed %d objects, archive has %d (received: %v)",
			note.ObjectsPushed, archive.Len(), client.Objects())
	}
	// Every archived object arrived, byte-exact.
	for _, u := range archive.URLs() {
		p, err := client.Object(u, time.Second)
		if err != nil {
			t.Fatalf("missing %s: %v", u, err)
		}
		want, _ := archive.Get(u)
		if !bytes.Equal(p.Body, want.Body) {
			t.Fatalf("object %s corrupted in transit", u)
		}
	}
	if client.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d, want 0 under replay rewrite", client.Fallbacks)
	}
}

func TestONLDBundlesFewer(t *testing.T) {
	run := func(cfg sched.Config) int {
		proxyAddr, mainURL, _ := startStack(t, cfg)
		client, err := Dial(proxyAddr, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		client.RequestPage(mainURL, "", "")
		if _, err := client.WaitComplete(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return client.BundlesReceived
	}
	ind := run(sched.ConfigIND)
	onld := run(sched.ConfigONLD)
	if onld >= ind {
		t.Fatalf("ONLD bundles %d >= IND bundles %d", onld, ind)
	}
}

func TestFallbackFetchesUnknownObject(t *testing.T) {
	proxyAddr, mainURL, archive := startStack(t, sched.ConfigIND)
	// An object the page never references, but the archive serves.
	archive.Record(httpsim.Object{URL: "http://www.shop.test/secret.txt", ContentType: "text/plain", Body: []byte("s3cret")})
	client, err := Dial(proxyAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.RequestPage(mainURL, "", "")
	if _, err := client.WaitComplete(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	p, err := client.Object("http://www.shop.test/secret.txt", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Body) != "s3cret" {
		t.Fatalf("fallback body = %q", p.Body)
	}
	if client.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", client.Fallbacks)
	}
}

func TestMissingObjectTimesOutWith404(t *testing.T) {
	proxyAddr, mainURL, _ := startStack(t, sched.ConfigIND)
	client, err := Dial(proxyAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.RequestPage(mainURL, "", "")
	client.WaitComplete(10 * time.Second)
	p, err := client.Object("http://www.shop.test/never-existed", 5*time.Second)
	// The proxy fetches it, the origin 404s, and the client receives the
	// 404 part (not a timeout) — pages must not stall on missing objects.
	if err != nil {
		t.Fatalf("expected 404 part, got error %v", err)
	}
	if p.Status != 404 {
		t.Fatalf("status = %d, want 404", p.Status)
	}
}

func TestShapedDialStillCorrect(t *testing.T) {
	proxyAddr, mainURL, archive := startStack(t, sched.Config512K)
	shaped := func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return netem.Wrap(conn, netem.Params{Latency: 10 * time.Millisecond, Bps: 2 << 20}), nil
	}
	client, err := Dial(proxyAddr, shaped)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	client.RequestPage(mainURL, "", "")
	if _, err := client.WaitComplete(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(client.Objects()) != archive.Len() {
		t.Fatalf("received %d objects, want %d", len(client.Objects()), archive.Len())
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("shaping had no effect at all")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 0, 255}
	if err := WriteFrame(&buf, TBundle, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TBundle || !bytes.Equal(got, payload) {
		t.Fatalf("frame round-trip: typ=%d payload=%v", typ, got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{TBundle, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
	if err := WriteFrame(&buf, TBundle, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestProxyRequiresOrigin(t *testing.T) {
	if _, err := StartProxy("127.0.0.1:0", ProxyConfig{}); err == nil {
		t.Fatal("proxy started without origin")
	}
}

func TestOriginServesByHostHeader(t *testing.T) {
	archive, _ := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", archive)
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	f := NewOriginFetcher(origin.Addr())
	body, ct, status, err := f.Fetch("http://cdn.shop.test/app.js")
	if err != nil || status != 200 {
		t.Fatalf("fetch: %v status=%d", err, status)
	}
	if !strings.Contains(string(body), "dyn.png") || !strings.Contains(ct, "javascript") {
		t.Fatalf("wrong object: ct=%q body=%q", ct, body)
	}
	_, _, status, err = f.Fetch("http://cdn.shop.test/nope")
	if err != nil || status != 404 {
		t.Fatalf("missing object: %v status=%d", err, status)
	}
}
