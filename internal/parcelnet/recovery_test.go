package parcelnet

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// fastRecovery keeps the reconnect budget cheap enough for tests.
func fastRecovery() ClientConfig {
	return ClientConfig{
		MaxRetries:  3,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// TestKillProxyDegradesToDirectOrigin is the headline robustness scenario:
// the proxy dies mid-push, the client burns its retry budget against the
// dead listener, degrades to DIR mode, and the page still completes with
// every object fetched straight from the origin — leaking nothing.
func TestKillProxyDegradesToDirectOrigin(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	// A long quiet period guarantees the kill lands before completion.
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 30 * time.Second,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRecovery()
	cfg.DirectOrigin = origin.Addr()
	client, err := DialConfig(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "parcel-test/1.0", ""); err != nil {
		t.Fatal(err)
	}
	// Let at least one bundle land, then pull the proxy out from under it.
	waitFor(t, 5*time.Second, func() bool { return len(client.Objects()) > 0 })
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := client.WaitComplete(10 * time.Second); err != nil {
		t.Fatalf("degraded page did not complete: %v", err)
	}
	if !client.Degraded() {
		t.Fatal("client did not degrade after the proxy died")
	}
	for _, u := range archive.URLs() {
		p, err := client.Object(u, 5*time.Second)
		if err != nil {
			t.Fatalf("object %s unavailable in DIR mode: %v", u, err)
		}
		want, _ := archive.Get(u)
		if !bytes.Equal(p.Body, want.Body) {
			t.Fatalf("object %s corrupted", u)
		}
	}
	if client.Fallbacks == 0 || client.DirectFetches == 0 {
		t.Fatalf("degraded load recorded no fallbacks: fallbacks=%d direct=%d",
			client.Fallbacks, client.DirectFetches)
	}
	if client.Retries == 0 {
		t.Fatal("degradation happened without any reconnect attempts")
	}
	client.Close()
}

// TestReconnectResumesSession kills only the first client connection (netem
// KillAfterBytes) while the proxy stays up: the client must reconnect, resend
// the page request with its already-have manifest, and the proxy must push
// only what is missing.
func TestReconnectResumesSession(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyAddr := proxy.Addr()
	var dials atomic.Int64
	cfg := fastRecovery()
	cfg.Dial = func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			// First connection dies once ~3 KB of pushed bundle arrive.
			return netem.Wrap(conn, netem.Params{KillAfterBytes: 3000}), nil
		}
		return conn, nil
	}
	client, err := DialConfig(proxyAddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatalf("resumed page did not complete: %v", err)
	}
	if client.Resumes == 0 {
		t.Fatal("connection kill did not trigger a session resume")
	}
	if client.Degraded() {
		t.Fatal("client degraded even though the proxy was reachable")
	}
	if note.ObjectsSkipped == 0 {
		t.Fatalf("resumed session re-pushed everything: %+v (objects held before resume should be skipped)", note)
	}
	for _, u := range archive.URLs() {
		p, err := client.Object(u, 5*time.Second)
		if err != nil {
			t.Fatalf("missing %s after resume: %v", u, err)
		}
		want, _ := archive.Get(u)
		if !bytes.Equal(p.Body, want.Body) {
			t.Fatalf("object %s corrupted across the resume", u)
		}
	}
	client.Close()
}

// TestProxySessionTeardownOnDisconnect covers the proxy side: a client that
// vanishes mid-push must leave no active session, no armed quiet timer, and
// no goroutines behind.
func TestProxySessionTeardownOnDisconnect(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 30 * time.Second, // never fires; teardown must stop it
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cfg := fastRecovery()
	cfg.MaxRetries = -1 // vanish for good: no reconnect
	client, err := DialConfig(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(client.Objects()) > 0 })
	if got := proxy.Sessions(); got != 1 {
		t.Fatalf("active sessions = %d mid-page, want 1", got)
	}
	client.Close()
	waitFor(t, 5*time.Second, func() bool { return proxy.Sessions() == 0 })
	if served := proxy.SessionsServed(); served != 1 {
		t.Fatalf("sessions served = %d, want 1", served)
	}
}

// TestIdleTimeoutReapsSession: a connected client that never sends a frame is
// reaped once the idle deadline passes.
func TestIdleTimeoutReapsSession(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, _ := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, 2*time.Second, func() bool { return proxy.Sessions() == 1 })
	waitFor(t, 2*time.Second, func() bool { return proxy.Sessions() == 0 })
}

// TestClosedClientReturnsDistinctError: Object and WaitComplete on a closed
// client fail immediately with ErrClosed, not a bare timeout.
func TestClosedClientReturnsDistinctError(t *testing.T) {
	proxyAddr, mainURL, _ := startStack(t, sched.ConfigIND)
	client, err := Dial(proxyAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	client.Close()
	start := time.Now()
	if _, err := client.Object("http://www.shop.test/hero.jpg", 10*time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("Object on closed client: %v, want ErrClosed", err)
	}
	if _, err := client.WaitComplete(10 * time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitComplete on closed client: %v, want ErrClosed", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("closed client waited out the timeout instead of failing fast")
	}
}

// TestProxyGoneWithoutFallbackFailsDistinctly: retries exhausted and no
// DirectOrigin configured → ErrProxyGone, not a timeout.
func TestProxyGoneWithoutFallbackFailsDistinctly(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 30 * time.Second,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRecovery()
	cfg.MaxRetries = 2
	client, err := DialConfig(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(client.Objects()) > 0 })
	proxy.Close()
	if _, err := client.WaitComplete(10 * time.Second); !errors.Is(err, ErrProxyGone) {
		t.Fatalf("WaitComplete after proxy death: %v, want ErrProxyGone", err)
	}
	if _, err := client.Object("http://www.shop.test/hero.jpg", time.Second); err != nil {
		// hero.jpg may or may not have arrived before the kill; if it did not,
		// the error must be the distinct one.
		if !errors.Is(err, ErrProxyGone) {
			t.Fatalf("Object after proxy death: %v, want ErrProxyGone", err)
		}
	}
	client.Close()
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
