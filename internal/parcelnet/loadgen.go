package parcelnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/sched"
)

// LoadgenConfig describes one multi-tenant load-generation run: a fleet of
// concurrent simulated clients loading pages through one sharded proxy over
// real TCP, optionally shaped per-client with netem.
type LoadgenConfig struct {
	// Clients is the fleet size (concurrent sessions).
	Clients int
	// Store backs the origin (wrap an archive in replay.Rewriting to get
	// session-specific bytes rewritten).
	Store httpsim.Store
	// URLs are the page URLs tenants load, assigned round-robin.
	URLs []string
	// Sched is the proxy's bundle schedule.
	Sched sched.Config

	// Shards, CacheBytes, SessionPushBudget, ProxyPushBudget configure the
	// proxy (see ProxyConfig).
	Shards            int
	CacheBytes        int64
	SessionPushBudget int64
	ProxyPushBudget   int64

	// Netem, when non-nil, shapes every client's read side with these
	// parameters (the cellular access link).
	Netem *netem.Params
	// QuietPeriod is the proxy's §4.5 window (default 200 ms — load runs
	// want throughput, not fidelity to the 2 s production default).
	QuietPeriod time.Duration
	// Timeout bounds each session's wait for completion (default 60 s).
	Timeout time.Duration
	// Stagger spaces session starts to avoid a pure thundering herd
	// (default 0: all at once).
	Stagger time.Duration
	// FixedRandom applies the replay rewrite in page JS.
	FixedRandom bool
	// Mux runs every tenant over the parcelmux stream layer (prioritized,
	// flow-controlled streams) instead of monolithic bundles.
	Mux bool
	// MuxChunkSize, MuxStreamWindow, MuxConnWindow tune the stream layer
	// (see ProxyConfig); zero values take the defaults.
	MuxChunkSize    int
	MuxStreamWindow int64
	MuxConnWindow   int64
	// Logf, when set, receives proxy diagnostics.
	Logf func(format string, args ...any)
}

// LoadgenResult is everything a load run measured.
type LoadgenResult struct {
	Loads  []metrics.SessionLoad
	Report metrics.FleetReport
	Cache  objcache.Stats
	// ProxyDeferred and ProxyShed are the proxy-wide admission counters.
	ProxyDeferred int64
	ProxyShed     int64
	// SessionsServed is the proxy's accept count (== Clients when every
	// session connected).
	SessionsServed int
}

// RunLoadgen starts an origin and a sharded proxy, drives cfg.Clients
// concurrent sessions through them, and aggregates the fleet report. It
// tears everything down before returning, so a leak-checked test can call it
// directly.
func RunLoadgen(cfg LoadgenConfig) (LoadgenResult, error) {
	if cfg.Clients <= 0 {
		return LoadgenResult{}, fmt.Errorf("parcelnet: loadgen needs Clients > 0")
	}
	if len(cfg.URLs) == 0 {
		return LoadgenResult{}, fmt.Errorf("parcelnet: loadgen needs at least one URL")
	}
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 200 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	origin, err := StartOrigin("127.0.0.1:0", cfg.Store)
	if err != nil {
		return LoadgenResult{}, err
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:        origin.Addr(),
		Sched:             cfg.Sched,
		QuietPeriod:       cfg.QuietPeriod,
		FixedRandom:       cfg.FixedRandom,
		Shards:            cfg.Shards,
		CacheBytes:        cfg.CacheBytes,
		SessionPushBudget: cfg.SessionPushBudget,
		ProxyPushBudget:   cfg.ProxyPushBudget,
		MuxChunkSize:      cfg.MuxChunkSize,
		MuxStreamWindow:   cfg.MuxStreamWindow,
		MuxConnWindow:     cfg.MuxConnWindow,
		Logf:              cfg.Logf,
	})
	if err != nil {
		return LoadgenResult{}, err
	}
	defer proxy.Close()

	var dial dialFunc
	if cfg.Netem != nil {
		p := *cfg.Netem
		dial = func(network, addr string) (net.Conn, error) {
			conn, err := net.DialTimeout(network, addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return netem.Wrap(conn, p), nil
		}
	}

	loads := make([]metrics.SessionLoad, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		if cfg.Stagger > 0 && i > 0 {
			time.Sleep(cfg.Stagger)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			loads[id] = runTenant(id, proxy.Addr(), origin.Addr(), cfg, dial)
		}(i)
	}
	wg.Wait()

	res := LoadgenResult{
		Loads:          loads,
		Report:         metrics.Fleet(loads),
		Cache:          proxy.CacheStats(),
		ProxyDeferred:  proxy.DeferredTotal(),
		ProxyShed:      proxy.ShedTotal(),
		SessionsServed: proxy.SessionsServed(),
	}
	return res, nil
}

// runTenant drives one session: connect, request the page, wait for
// completion, snapshot the sample. Failures (dial errors, timeouts) produce
// an incomplete sample rather than aborting the fleet.
func runTenant(id int, proxyAddr, originAddr string, cfg LoadgenConfig, dial dialFunc) metrics.SessionLoad {
	url := cfg.URLs[id%len(cfg.URLs)]
	client, err := DialConfig(proxyAddr, ClientConfig{
		Dial:         dial,
		DirectOrigin: originAddr,
		Seed:         int64(id) + 1,
		Mux:          cfg.Mux,
	})
	if err != nil {
		return metrics.SessionLoad{ID: id, Page: url}
	}
	defer client.Close()
	if err := client.RequestPage(url, "loadgen", "1280x800"); err != nil {
		return metrics.SessionLoad{ID: id, Page: url}
	}
	client.WaitComplete(cfg.Timeout)
	return client.SessionLoad(id)
}
