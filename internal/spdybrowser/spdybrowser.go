// Package spdybrowser is the SPDY-proxy comparison arm the paper discusses
// qualitatively (Table 1, §3/§4.3) and leaves as future quantitative work:
// a traditional browser whose transport is SPDY-like — one multiplexed
// connection per domain, many outstanding requests, compressed headers —
// but whose object identification still happens on the mobile client.
package spdybrowser

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/scenario"
)

// Options tune the SPDY arm.
type Options struct {
	// RequestIssueCost mirrors the DIR client's per-request dispatch cost.
	RequestIssueCost time.Duration
	CPU              browser.CPUModel
	FixedRandom      bool
}

// Browser is one SPDY page-load session.
type Browser struct {
	Engine *browser.Engine
	Client *httpsim.SPDYClient
	topo   *scenario.Topology
}

type fetcher struct {
	topo      *scenario.Topology
	c         *httpsim.SPDYClient
	issueCost time.Duration
	issueBusy time.Duration
}

func (f *fetcher) Fetch(url string, cb func(browser.Result)) {
	do := func() {
		f.c.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
			cb(browser.Result{URL: resp.URL, Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body, At: at})
		})
	}
	if f.issueCost <= 0 {
		do()
		return
	}
	sim := f.topo.Sim
	start := sim.Now()
	if start < f.issueBusy {
		start = f.issueBusy
	}
	start += f.issueCost
	f.issueBusy = start
	sim.ScheduleAt(start, do)
}

// New prepares a SPDY-transport browser on the topology.
func New(topo *scenario.Topology, opt Options) *Browser {
	if opt.CPU == (browser.CPUModel{}) {
		opt.CPU = browser.MobileCPU()
	}
	if opt.RequestIssueCost == 0 {
		opt.RequestIssueCost = 3 * time.Millisecond
	}
	client := httpsim.NewSPDYClient(topo.Sim, topo.Client, topo.Dir, topo.ClientResolver)
	engine := browser.New(topo.Sim, &fetcher{topo: topo, c: client, issueCost: opt.RequestIssueCost}, browser.Options{
		CPU:         opt.CPU,
		FixedRandom: opt.FixedRandom,
	})
	return &Browser{Engine: engine, Client: client, topo: topo}
}

// Load runs the page to quiescence and returns the metrics.
func (b *Browser) Load() metrics.PageRun {
	b.Engine.Load(b.topo.Page.MainURL)
	b.topo.Sim.Run()
	run := metrics.PageRun{Scheme: "SPDY", Page: b.topo.Page.Name}
	onload, _ := b.Engine.OnloadNetAt()
	metrics.FromTrace(&run, b.topo.ClientTrace, onload, radio.DefaultLTE(), nil)
	run.CPUActive = b.Engine.CPUActive()
	run.HTTPRequests = b.Client.RequestsSent
	run.ConnsOpened = b.Client.ConnsOpened
	run.ObjectsLoaded = b.Engine.NumRequested()
	return run
}

// Run builds, loads and measures in one call.
func Run(topo *scenario.Topology, opt Options) metrics.PageRun {
	return New(topo, opt).Load()
}
