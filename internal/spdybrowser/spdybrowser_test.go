package spdybrowser

import (
	"testing"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/stats"
	"github.com/parcel-go/parcel/internal/webgen"
)

func pageAt(t testing.TB, idx int) webgen.Page {
	t.Helper()
	pages := webgen.Generate(webgen.Spec{Seed: 31, NumPages: 6})
	return pages[idx%len(pages)]
}

func TestSPDYLoadsFullPage(t *testing.T) {
	page := pageAt(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true})
	run := b.Load()
	if run.OLT == 0 {
		t.Fatal("onload never fired")
	}
	if _, ok := b.Engine.CompleteAt(); !ok {
		t.Fatal("page never completed")
	}
	if run.ObjectsLoaded < page.ObjectCount-2 { // https beacons excepted
		t.Fatalf("loaded %d of %d objects", run.ObjectsLoaded, page.ObjectCount)
	}
}

func TestSPDYSingleConnPerDomain(t *testing.T) {
	page := pageAt(t, 2)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true})
	b.Load()
	if b.Client.TotalConns() > len(page.Domains) {
		t.Fatalf("SPDY opened %d conns for %d domains", b.Client.TotalConns(), len(page.Domains))
	}
	dTopo := scenario.Build(page, scenario.DefaultParams())
	d := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
	if b.Client.ConnsOpened >= d.ConnsOpened {
		t.Fatalf("SPDY conns %d >= DIR conns %d", b.Client.ConnsOpened, d.ConnsOpened)
	}
}

func TestSPDYBeatsDIRButNotParcel(t *testing.T) {
	// The paper's position (§3, §4.3): SPDY transport helps HTTP's
	// per-object round trips somewhat, but client-side discovery still
	// bounds it — PARCEL keeps its advantage even against SPDY.
	//
	// This test used to count per-page wins against an n-1 threshold and
	// failed on some seeds. Part of that was a real bug — httpsim.Client
	// chose idle-eviction victims by ranging over its pools map, so
	// connection reuse (and with it DIR/SPDY OLT) varied run to run; the
	// client now walks pools in creation order (see Client.poolList).
	// The rest is genuine page-to-page variance: over a high-RTT LTE link
	// SPDY's single multiplexed connection can lose to DIR's parallel
	// congestion windows on some page shapes, so its edge — like the
	// paper's §8 claims — only holds in aggregate. The assertion therefore
	// compares medians over the whole page set: SPDY's transport fix buys a
	// modest win over DIR, while PARCEL's proxy-side discovery beats SPDY
	// by a wide margin.
	const n = 6
	var spdyOLT, dirOLT, parcelOLT []float64
	for i := 0; i < n; i++ {
		page := pageAt(t, i)
		sTopo := scenario.Build(page, scenario.DefaultParams())
		s := Run(sTopo, Options{FixedRandom: true})
		dTopo := scenario.Build(page, scenario.DefaultParams())
		d := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
		pTopo := scenario.Build(page, scenario.DefaultParams())
		p := core.Run(pTopo, core.DefaultProxyConfig(), core.DefaultClientConfig())
		spdyOLT = append(spdyOLT, s.OLT.Seconds())
		dirOLT = append(dirOLT, d.OLT.Seconds())
		parcelOLT = append(parcelOLT, p.OLT.Seconds())
	}
	spdy, dir, parcel := stats.Median(spdyOLT), stats.Median(dirOLT), stats.Median(parcelOLT)
	if spdy >= dir {
		t.Fatalf("SPDY median OLT %.2fs >= DIR %.2fs", spdy, dir)
	}
	if parcel >= 0.75*spdy {
		t.Fatalf("PARCEL median OLT %.2fs not well below SPDY %.2fs", parcel, spdy)
	}
}
