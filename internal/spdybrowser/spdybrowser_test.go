package spdybrowser

import (
	"testing"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

func pageAt(t testing.TB, idx int) webgen.Page {
	t.Helper()
	pages := webgen.Generate(webgen.Spec{Seed: 31, NumPages: 6})
	return pages[idx%len(pages)]
}

func TestSPDYLoadsFullPage(t *testing.T) {
	page := pageAt(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true})
	run := b.Load()
	if run.OLT == 0 {
		t.Fatal("onload never fired")
	}
	if _, ok := b.Engine.CompleteAt(); !ok {
		t.Fatal("page never completed")
	}
	if run.ObjectsLoaded < page.ObjectCount-2 { // https beacons excepted
		t.Fatalf("loaded %d of %d objects", run.ObjectsLoaded, page.ObjectCount)
	}
}

func TestSPDYSingleConnPerDomain(t *testing.T) {
	page := pageAt(t, 2)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true})
	b.Load()
	if b.Client.TotalConns() > len(page.Domains) {
		t.Fatalf("SPDY opened %d conns for %d domains", b.Client.TotalConns(), len(page.Domains))
	}
	dTopo := scenario.Build(page, scenario.DefaultParams())
	d := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
	if b.Client.ConnsOpened >= d.ConnsOpened {
		t.Fatalf("SPDY conns %d >= DIR conns %d", b.Client.ConnsOpened, d.ConnsOpened)
	}
}

func TestSPDYBeatsDIRButNotParcel(t *testing.T) {
	// The paper's position (§3, §4.3): SPDY transport helps HTTP's
	// per-object round trips somewhat, but client-side discovery still
	// bounds it — PARCEL keeps its advantage even against SPDY.
	betterThanDIR, parcelBeatsSPDY := 0, 0
	const n = 4
	for i := 0; i < n; i++ {
		page := pageAt(t, i)
		sTopo := scenario.Build(page, scenario.DefaultParams())
		s := Run(sTopo, Options{FixedRandom: true})
		dTopo := scenario.Build(page, scenario.DefaultParams())
		d := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
		pTopo := scenario.Build(page, scenario.DefaultParams())
		p := core.Run(pTopo, core.DefaultProxyConfig(), core.DefaultClientConfig())
		if s.OLT < d.OLT {
			betterThanDIR++
		}
		if p.OLT < s.OLT {
			parcelBeatsSPDY++
		}
	}
	if betterThanDIR < n-1 {
		t.Fatalf("SPDY beat DIR on only %d/%d pages", betterThanDIR, n)
	}
	if parcelBeatsSPDY < n-1 {
		t.Fatalf("PARCEL beat SPDY on only %d/%d pages", parcelBeatsSPDY, n)
	}
}
