package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair over loopback.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestLatencyApplied(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: 60 * time.Millisecond})
	start := time.Now()
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 55*time.Millisecond {
		t.Fatalf("read completed after %v, want >= 60ms latency", elapsed)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("read took %v, far more than the configured latency", elapsed)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("payload corrupted: %q", buf)
	}
}

func TestBandwidthCap(t *testing.T) {
	a, b := pipePair(t)
	const rate = 1 << 20 // 1 MB/s
	shaped := Wrap(b, Params{Bps: rate})
	payload := make([]byte, 512<<10) // 512 KB -> ~0.5 s at 1 MB/s
	go func() {
		a.Write(payload)
		a.Close()
	}()
	start := time.Now()
	n, err := io.Copy(io.Discard, shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != int64(len(payload)) {
		t.Fatalf("read %d bytes, want %d", n, len(payload))
	}
	if elapsed < 350*time.Millisecond {
		t.Fatalf("transfer finished in %v, faster than the 1 MB/s cap allows", elapsed)
	}
}

func TestDataIntegrityUnderShaping(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: 5 * time.Millisecond, Bps: 4 << 20})
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		for off := 0; off < len(payload); off += 7000 {
			end := off + 7000
			if end > len(payload) {
				end = len(payload)
			}
			a.Write(payload[off:end])
		}
		a.Close()
	}()
	got, err := io.ReadAll(shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shaped stream corrupted data")
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	_, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: time.Second})
	done := make(chan error, 1)
	go func() {
		_, err := shaped.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	shaped.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock on close")
	}
}

// TestCloseUnblocksDelayedRead parks a reader on a chunk whose release time
// is far in the future — the wait-with-timer path, not the empty-queue
// cond.Wait path — and requires Close to unblock it promptly.
func TestCloseUnblocksDelayedRead(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: 30 * time.Second})
	if _, err := a.Write([]byte("delayed far beyond the test deadline")); err != nil {
		t.Fatal(err)
	}
	// Wait until the chunk is queued so Read blocks on the release time.
	deadline := time.Now().Add(2 * time.Second)
	for {
		shaped.mu.Lock()
		queued := len(shaped.queue) > 0
		shaped.mu.Unlock()
		if queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chunk never queued")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		_, err := shaped.Read(make([]byte, 8))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	shaped.Close()
	select {
	case err := <-done:
		if err != net.ErrClosed {
			t.Fatalf("read returned %v after close, want net.ErrClosed", err)
		}
		if since := time.Since(start); since > time.Second {
			t.Fatalf("read unblocked %v after close, want prompt", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read parked on a delayed chunk did not unblock on close")
	}
}

func TestLossAddsDelayNotCorruption(t *testing.T) {
	a, b := pipePair(t)
	// Loss 1 => every chunk pays the RTO; payload must still arrive intact.
	shaped := Wrap(b, Params{Loss: 1, LossRTO: 50 * time.Millisecond, Seed: 7})
	payload := []byte("lossy but reliable")
	start := time.Now()
	go func() {
		a.Write(payload)
		a.Close()
	}()
	got, err := io.ReadAll(shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("loss added no delay (%v)", elapsed)
	}
	if shaped.LostChunks() == 0 {
		t.Fatal("loss injector never fired")
	}
}

func TestLossDrawsAreSeedDeterministic(t *testing.T) {
	run := func(seed int64) int {
		a, b := pipePair(t)
		shaped := Wrap(b, Params{Loss: 0.5, LossRTO: time.Millisecond, Seed: seed})
		go func() {
			buf := make([]byte, 1000)
			for i := 0; i < 20; i++ {
				a.Write(buf)
				time.Sleep(2 * time.Millisecond) // separate chunks
			}
			a.Close()
		}()
		io.Copy(io.Discard, shaped)
		return shaped.LostChunks()
	}
	// Same seed twice: identical draw sequence over the same chunk count.
	// (Chunk boundaries depend on TCP timing, so compare counts, which are
	// stable with the paced writes above.)
	if a, b := run(42), run(42); a != b {
		t.Fatalf("seed 42 gave %d then %d lost chunks", a, b)
	}
}

func TestKillAfterBytes(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{KillAfterBytes: 10_000})
	go func() {
		buf := make([]byte, 4096)
		for i := 0; i < 16; i++ {
			if _, err := a.Write(buf); err != nil {
				return
			}
		}
	}()
	n, err := io.Copy(io.Discard, shaped)
	if err != ErrInjectedKill {
		t.Fatalf("err = %v, want ErrInjectedKill", err)
	}
	if n < 10_000 {
		t.Fatalf("delivered only %d bytes before the kill, want >= budget", n)
	}
}

func TestStallInjector(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{StallAfterBytes: 5000, StallFor: 150 * time.Millisecond})
	payload := make([]byte, 20_000)
	go func() {
		a.Write(payload)
		a.Close()
	}()
	start := time.Now()
	n, err := io.Copy(io.Discard, shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("read %d bytes, want %d", n, len(payload))
	}
	if elapsed := time.Since(start); elapsed < 140*time.Millisecond {
		t.Fatalf("stall added no dead air (%v)", elapsed)
	}
}

func TestLTEProfile(t *testing.T) {
	p := LTE()
	if p.Latency <= 0 || p.Bps <= 0 {
		t.Fatalf("LTE profile invalid: %+v", p)
	}
}
