package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair over loopback.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestLatencyApplied(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: 60 * time.Millisecond})
	start := time.Now()
	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(shaped, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 55*time.Millisecond {
		t.Fatalf("read completed after %v, want >= 60ms latency", elapsed)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("read took %v, far more than the configured latency", elapsed)
	}
	if !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("payload corrupted: %q", buf)
	}
}

func TestBandwidthCap(t *testing.T) {
	a, b := pipePair(t)
	const rate = 1 << 20 // 1 MB/s
	shaped := Wrap(b, Params{Bps: rate})
	payload := make([]byte, 512<<10) // 512 KB -> ~0.5 s at 1 MB/s
	go func() {
		a.Write(payload)
		a.Close()
	}()
	start := time.Now()
	n, err := io.Copy(io.Discard, shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n != int64(len(payload)) {
		t.Fatalf("read %d bytes, want %d", n, len(payload))
	}
	if elapsed < 350*time.Millisecond {
		t.Fatalf("transfer finished in %v, faster than the 1 MB/s cap allows", elapsed)
	}
}

func TestDataIntegrityUnderShaping(t *testing.T) {
	a, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: 5 * time.Millisecond, Bps: 4 << 20})
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		for off := 0; off < len(payload); off += 7000 {
			end := off + 7000
			if end > len(payload) {
				end = len(payload)
			}
			a.Write(payload[off:end])
		}
		a.Close()
	}()
	got, err := io.ReadAll(shaped)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shaped stream corrupted data")
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	_, b := pipePair(t)
	shaped := Wrap(b, Params{Latency: time.Second})
	done := make(chan error, 1)
	go func() {
		_, err := shaped.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	shaped.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock on close")
	}
}

func TestLTEProfile(t *testing.T) {
	p := LTE()
	if p.Latency <= 0 || p.Bps <= 0 {
		t.Fatalf("LTE profile invalid: %+v", p)
	}
}
