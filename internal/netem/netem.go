// Package netem shapes real network connections the way dummynet shapes the
// paper's testbed (§7.3): it wraps a net.Conn with one-way latency and a
// bandwidth cap, so the real-network PARCEL mode can emulate a cellular
// access link on loopback.
//
// Beyond shaping, the wrapper injects faults: seeded random loss (modelled
// as TCP retransmission delay — the wrapped conn is a reliable stream, so a
// "lost" chunk arrives late rather than never), a connection kill after a
// byte budget, and a one-shot delivery stall. All fault knobs default to
// zero, in which case behaviour is identical to the plain shaper.
package netem

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedKill is the error delivered to readers when the connection was
// torn down by the KillAfterBytes fault injector. Callers distinguish it from
// organic peer failures in tests.
var ErrInjectedKill = errors.New("netem: injected connection kill")

// Params describes one direction of shaping and fault injection.
type Params struct {
	// Latency is added one-way delay per chunk.
	Latency time.Duration
	// Bps is the bandwidth cap in bytes/second (0 = unlimited).
	Bps int64

	// Loss is the per-chunk probability of a simulated loss. The underlying
	// conn is a reliable byte stream, so loss surfaces as TCP would surface
	// it: the chunk (and, via FIFO delivery, everything behind it) is
	// delayed by LossRTO. 0 disables.
	Loss float64
	// LossRTO is the added delay per lost chunk (default 200 ms).
	LossRTO time.Duration
	// Seed seeds the loss draws so a fault profile replays identically
	// (default 1).
	Seed int64

	// KillAfterBytes tears the connection down (ErrInjectedKill, underlying
	// conn closed) once that many bytes have been queued for delivery —
	// the "pusher dies mid-bundle" fault. 0 disables.
	KillAfterBytes int64

	// StallAfterBytes freezes delivery for StallFor once that many bytes
	// have been queued — a one-shot dead-air window mid-transfer. 0 disables.
	StallAfterBytes int64
	// StallFor is the stall duration (default 1 s when a stall is armed).
	StallFor time.Duration
}

// LTE returns a profile approximating the paper's LTE access: ~39 ms one-way
// delay (78 ms RTT) and ≈6.75 Mbps.
func LTE() Params {
	return Params{Latency: 39 * time.Millisecond, Bps: 6_750_000 / 8}
}

func (p Params) lossRTO() time.Duration {
	if p.LossRTO > 0 {
		return p.LossRTO
	}
	return 200 * time.Millisecond
}

func (p Params) stallFor() time.Duration {
	if p.StallFor > 0 {
		return p.StallFor
	}
	return time.Second
}

// chunk is a timed unit of shaped data.
type chunk struct {
	releaseAt time.Time
	data      []byte
}

// Conn wraps an underlying connection, delaying and rate-limiting the bytes
// read from it. Writes pass through unshaped — shape both endpoints (or both
// directions via two wrapped conns) for symmetric emulation.
type Conn struct {
	net.Conn
	p   Params
	rng *rand.Rand // loss draws; nil when Loss == 0

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []chunk
	buf    []byte // current partially-consumed chunk
	rerr   error
	closed bool

	// busyUntil models serialization at the capped rate.
	busyUntil time.Time

	// fault bookkeeping (guarded by mu; written by the pump goroutine)
	pumped  int64 // bytes queued so far
	stalled bool  // one-shot stall already fired
	lost    int   // chunks hit by the loss injector
}

// LostChunks reports how many chunks the loss injector hit so far.
func (c *Conn) LostChunks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

// Wrap shapes reads from conn with p. It spawns a reader goroutine that
// lives until conn closes.
func Wrap(conn net.Conn, p Params) *Conn {
	c := &Conn{Conn: conn, p: p}
	if p.Loss > 0 {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	c.cond = sync.NewCond(&c.mu)
	go c.pump()
	return c
}

// pump moves bytes from the underlying conn into the delay queue.
func (c *Conn) pump() {
	buf := make([]byte, 32<<10)
	for {
		n, err := c.Conn.Read(buf)
		now := time.Now()
		c.mu.Lock()
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			release := now.Add(c.p.Latency)
			if c.p.Bps > 0 {
				start := now
				if c.busyUntil.After(start) {
					start = c.busyUntil
				}
				c.busyUntil = start.Add(time.Duration(float64(n) / float64(c.p.Bps) * float64(time.Second)))
				release = c.busyUntil.Add(c.p.Latency)
			}
			c.pumped += int64(n)
			// Loss: a reliable stream retransmits, so the chunk is late, not
			// gone; FIFO delivery makes the delay head-of-line blocking for
			// everything queued behind it.
			if c.rng != nil && c.rng.Float64() < c.p.Loss {
				c.lost++
				release = release.Add(c.p.lossRTO())
			}
			// Stall: one dead-air window once the byte mark is crossed.
			if c.p.StallAfterBytes > 0 && !c.stalled && c.pumped >= c.p.StallAfterBytes {
				c.stalled = true
				release = release.Add(c.p.stallFor())
			}
			c.queue = append(c.queue, chunk{releaseAt: release, data: data})
			// Kill: the injector closes the conn under the reader's feet once
			// the byte budget is spent. Queued chunks still drain (they were
			// already "on the wire"); then readers see ErrInjectedKill.
			if c.p.KillAfterBytes > 0 && c.pumped >= c.p.KillAfterBytes {
				c.rerr = ErrInjectedKill
				c.cond.Broadcast()
				c.mu.Unlock()
				c.Conn.Close()
				return
			}
		}
		if err != nil {
			c.rerr = err
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// Read implements net.Conn with shaped delivery. A reader blocked here — in
// cond.Wait or parked on a not-yet-released chunk — unblocks promptly when
// Close is called.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return 0, net.ErrClosed
		}
		if len(c.buf) > 0 {
			n := copy(p, c.buf)
			c.buf = c.buf[n:]
			return n, nil
		}
		if len(c.queue) > 0 {
			head := c.queue[0]
			wait := time.Until(head.releaseAt)
			if wait <= 0 {
				c.queue = c.queue[1:]
				c.buf = head.data
				continue
			}
			// Wait on the condition with a wake-up timer instead of sleeping
			// outside the lock, so Close (which broadcasts) interrupts the
			// wait immediately rather than after the release delay.
			timer := time.AfterFunc(wait, func() {
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			})
			c.cond.Wait()
			timer.Stop()
			continue
		}
		if c.rerr != nil {
			err := c.rerr
			if err == io.EOF && c.closed {
				err = net.ErrClosed
			}
			return 0, err
		}
		c.cond.Wait()
	}
}

// Close closes the underlying connection and wakes blocked readers.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.Conn.Close()
}
