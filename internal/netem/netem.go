// Package netem shapes real network connections the way dummynet shapes the
// paper's testbed (§7.3): it wraps a net.Conn with one-way latency and a
// bandwidth cap, so the real-network PARCEL mode can emulate a cellular
// access link on loopback.
package netem

import (
	"io"
	"net"
	"sync"
	"time"
)

// Params describes one direction of shaping.
type Params struct {
	// Latency is added one-way delay per chunk.
	Latency time.Duration
	// Bps is the bandwidth cap in bytes/second (0 = unlimited).
	Bps int64
}

// LTE returns a profile approximating the paper's LTE access: ~39 ms one-way
// delay (78 ms RTT) and ≈6.75 Mbps.
func LTE() Params {
	return Params{Latency: 39 * time.Millisecond, Bps: 6_750_000 / 8}
}

// chunk is a timed unit of shaped data.
type chunk struct {
	releaseAt time.Time
	data      []byte
}

// Conn wraps an underlying connection, delaying and rate-limiting the bytes
// read from it. Writes pass through unshaped — shape both endpoints (or both
// directions via two wrapped conns) for symmetric emulation.
type Conn struct {
	net.Conn
	p Params

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []chunk
	buf    []byte // current partially-consumed chunk
	rerr   error
	closed bool

	// busyUntil models serialization at the capped rate.
	busyUntil time.Time
}

// Wrap shapes reads from conn with p. It spawns a reader goroutine that
// lives until conn closes.
func Wrap(conn net.Conn, p Params) *Conn {
	c := &Conn{Conn: conn, p: p}
	c.cond = sync.NewCond(&c.mu)
	go c.pump()
	return c
}

// pump moves bytes from the underlying conn into the delay queue.
func (c *Conn) pump() {
	buf := make([]byte, 32<<10)
	for {
		n, err := c.Conn.Read(buf)
		now := time.Now()
		c.mu.Lock()
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			release := now.Add(c.p.Latency)
			if c.p.Bps > 0 {
				start := now
				if c.busyUntil.After(start) {
					start = c.busyUntil
				}
				c.busyUntil = start.Add(time.Duration(float64(n) / float64(c.p.Bps) * float64(time.Second)))
				release = c.busyUntil.Add(c.p.Latency)
			}
			c.queue = append(c.queue, chunk{releaseAt: release, data: data})
		}
		if err != nil {
			c.rerr = err
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// Read implements net.Conn with shaped delivery.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.buf) > 0 {
			n := copy(p, c.buf)
			c.buf = c.buf[n:]
			return n, nil
		}
		if len(c.queue) > 0 {
			head := c.queue[0]
			wait := time.Until(head.releaseAt)
			if wait <= 0 {
				c.queue = c.queue[1:]
				c.buf = head.data
				continue
			}
			// Sleep outside the lock, then re-check.
			c.mu.Unlock()
			time.Sleep(wait)
			c.mu.Lock()
			continue
		}
		if c.rerr != nil {
			err := c.rerr
			if err == io.EOF && c.closed {
				err = net.ErrClosed
			}
			return 0, err
		}
		if c.closed {
			return 0, net.ErrClosed
		}
		c.cond.Wait()
	}
}

// Close closes the underlying connection and wakes blocked readers.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.Conn.Close()
}
