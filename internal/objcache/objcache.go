// Package objcache is the proxy's cross-session object cache: fetched origin
// objects keyed by canonical URL, validated by an origin validator, shared by
// every session of a multi-tenant proxy (ISSUE 7 / ROADMAP "Sharded
// multi-tenant proxy").
//
// It extends the pure-function-of-key invariant of internal/browser's
// artifact cache to origin payloads: for one (canonical URL, validator) pair
// the cache never yields two different bodies — the first insert of a
// generation wins, and a new validator replaces the whole entry. Lookups are
// sharded across segments, each with its own lock, byte budget, and intrusive
// LRU list; recency is a per-segment access counter, never a wall clock, so
// the package stays sim-deterministic (parcel-vet enforces this) and a
// virtual-time fleet simulation using it reproduces bit-identically.
//
// GetOrFetch adds single-flight de-duplication: concurrent sessions missing
// on the same URL share one origin fetch instead of stampeding the origin.
package objcache

import (
	"errors"
	"hash/fnv"
	"strings"
	"sync"
	"time"
)

// Object is one cached origin object. Body is immutable by contract: callers
// on both sides of the cache must never mutate it after Put/Get.
type Object struct {
	URL         string
	ContentType string
	Status      int
	// Validator is the origin's freshness token (ETag or a content digest).
	// Two objects under one URL with equal validators must be byte-identical;
	// a differing validator starts a new generation.
	Validator string
	Body      []byte
}

// Config sizes a Cache.
type Config struct {
	// Capacity is the total byte budget across all segments (bodies only).
	// Objects larger than one segment's share are never admitted.
	Capacity int64
	// Segments is the lock-sharding width (default 8, rounded up to one).
	Segments int
	// FreshFor is how long a stored entry counts as fresh before lookups must
	// revalidate at the origin. Zero (the default) means entries never go
	// stale — the legacy behavior.
	FreshFor time.Duration
	// NegTTL is how long a hard origin failure is negatively cached (serve
	// stale / fail fast without re-contacting the origin). Zero disables
	// negative caching.
	NegTTL time.Duration
}

// Stats is a point-in-time aggregate across segments.
type Stats struct {
	Hits        int64 // Get/GetOrFetch served from a resident entry
	Misses      int64 // lookups that found nothing resident
	Evictions   int64 // entries removed under byte pressure
	Shared      int64 // GetOrFetch callers that joined another caller's fetch
	StaleServes int64 // stale bodies served because the origin was failing
	NegHits     int64 // lookups answered inside a negative-cache window
	Entries     int   // resident objects
	Bytes       int64 // resident body bytes
	Capacity    int64 // configured budget
}

// Cache is a segmented, size-bounded, single-flight object cache. All methods
// are safe for concurrent use.
type Cache struct {
	segs []segment
}

// entry is one resident object on a segment's intrusive LRU list.
type entry struct {
	obj Object
	// storedAt is the caller-supplied time the entry was (re)stored; with a
	// FreshFor window it bounds freshness. stale forces revalidation early.
	storedAt   time.Duration
	stale      bool
	prev, next *entry
}

// flight is one in-progress origin fetch that concurrent callers join.
type flight struct {
	done chan struct{}
	key  string
	obj  Object
	err  error
	// settled is owner-only state: set by settleFlight before done closes so
	// the panic safety net can tell whether the flight still needs settling.
	settled bool
}

// errFetchPanicked is the error joiners observe when the owning caller's
// fetch function panicked instead of returning.
var errFetchPanicked = errors.New("objcache: fetch panicked")

type segment struct {
	mu       sync.Mutex
	cap      int64
	freshFor time.Duration
	negTTL   time.Duration
	bytes    int64
	entries  map[string]*entry
	flights  map[string]*flight
	// neg maps key -> end of its negative-cache window.
	neg         map[string]time.Duration
	lru         list
	hits        int64
	misses      int64
	evicted     int64
	shared      int64
	staleServes int64
	negHits     int64
}

// New builds a cache with the given budget. A zero or negative capacity
// returns a cache that admits nothing (all lookups miss), which keeps caller
// code branch-free when caching is disabled by configuration.
func New(cfg Config) *Cache {
	if cfg.Segments <= 0 {
		cfg.Segments = 8
	}
	c := &Cache{segs: make([]segment, cfg.Segments)}
	per := cfg.Capacity / int64(cfg.Segments)
	for i := range c.segs {
		c.segs[i].cap = per
		c.segs[i].freshFor = cfg.FreshFor
		c.segs[i].negTTL = cfg.NegTTL
		c.segs[i].entries = make(map[string]*entry)
		c.segs[i].flights = make(map[string]*flight)
		c.segs[i].neg = make(map[string]time.Duration)
	}
	return c
}

// Key canonicalizes a logical URL into the cache key: scheme and host are
// case-insensitive, the fragment never reaches the origin, and a default :80
// port is redundant. Purity of the cache is defined over this key.
func Key(url string) string {
	if i := strings.IndexByte(url, '#'); i >= 0 {
		url = url[:i]
	}
	rest := url
	scheme := ""
	if i := strings.Index(rest, "://"); i >= 0 {
		scheme = strings.ToLower(rest[:i+3])
		rest = rest[i+3:]
	}
	hostEnd := len(rest)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		hostEnd = i
	}
	host := strings.ToLower(rest[:hostEnd])
	host = strings.TrimSuffix(host, ":80")
	return scheme + host + rest[hostEnd:]
}

func (c *Cache) segFor(key string) *segment {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.segs[h.Sum32()%uint32(len(c.segs))]
}

// Get returns the resident object for url, if any, refreshing its recency.
func (c *Cache) Get(url string) (Object, bool) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return Object{}, false
	}
	s.hits++
	s.lru.moveToFront(e)
	return e.obj, true
}

// Put inserts obj (canonicalizing its URL) unless an entry with the same
// validator is already resident — the first insert of a generation wins, so a
// key never yields two different payloads. A new validator replaces the
// entry. Error statuses (>= 400) and objects larger than a segment's budget
// are not admitted.
func (c *Cache) Put(obj Object) {
	key := Key(obj.URL)
	s := c.segFor(key)
	s.mu.Lock()
	s.putLocked(key, obj)
	s.mu.Unlock()
}

// putLocked stores obj and returns its resident entry — the refreshed
// same-generation entry or the freshly inserted one — or nil when the store
// was rejected (error status or oversize).
func (s *segment) putLocked(key string, obj Object) *entry {
	if obj.Status >= 400 || int64(len(obj.Body)) > s.cap {
		return nil
	}
	if e, ok := s.entries[key]; ok {
		if e.obj.Validator == obj.Validator {
			// Same generation: keep the first body (purity), refresh recency.
			s.lru.moveToFront(e)
			return e
		}
		s.bytes -= int64(len(e.obj.Body))
		s.lru.remove(e)
		delete(s.entries, key)
	}
	e := &entry{obj: obj}
	e.obj.URL = key
	s.entries[key] = e
	s.lru.pushFront(e)
	s.bytes += int64(len(obj.Body))
	for s.bytes > s.cap {
		tail := s.lru.back()
		if tail == nil || tail == e {
			break
		}
		s.bytes -= int64(len(tail.obj.Body))
		s.lru.remove(tail)
		delete(s.entries, tail.obj.URL)
		s.evicted++
	}
	checkAccounting(s)
	return e
}

// GetOrFetch returns the object for url, fetching it at most once across
// concurrent callers: a miss either starts the origin fetch or joins the one
// already in flight for the same key. hit reports whether the object was
// resident (joining a flight counts as a miss — the origin was still
// contacted once on the caller group's behalf).
func (c *Cache) GetOrFetch(url string, fetch func() (Object, error)) (obj Object, hit bool, err error) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.hits++
		s.lru.moveToFront(e)
		obj = e.obj
		s.mu.Unlock()
		return obj, true, nil
	}
	s.misses++
	if f, ok := s.flights[key]; ok {
		s.shared++
		s.mu.Unlock()
		<-f.done
		return f.obj, false, f.err
	}
	f := s.openFlightLocked(key)
	s.mu.Unlock()

	defer s.settleFlightOnPanic(f)
	f.obj, f.err = fetch()
	if f.err == nil {
		s.mu.Lock()
		s.putLocked(key, f.obj)
		s.mu.Unlock()
	}
	s.settleFlight(f)
	return f.obj, false, f.err
}

// openFlightLocked registers a single-flight slot for key, with the segment
// lock held. Every path out of the owning caller must settle the flight —
// including a panicking fetch — or all future fetches of key join a flight
// that never lands and block forever.
//
//parcelvet:acquire flight
func (s *segment) openFlightLocked(key string) *flight {
	f := &flight{done: make(chan struct{}), key: key}
	s.flights[key] = f
	return f
}

// settleFlight publishes the flight's outcome: the slot is removed so new
// callers start a fresh fetch, then done closes so joiners wake with
// f.obj/f.err in place. Owner-only; called with the segment unlocked.
//
//parcelvet:release flight
func (s *segment) settleFlight(f *flight) {
	s.mu.Lock()
	delete(s.flights, f.key)
	s.mu.Unlock()
	f.settled = true
	close(f.done)
}

// settleFlightOnPanic is the owner's deferred safety net around fetch: if the
// fetch panicked, the flight is settled with errFetchPanicked before the
// panic unwinds, so joiners fail instead of hanging. No-op after a normal
// settleFlight.
func (s *segment) settleFlightOnPanic(f *flight) {
	if !f.settled {
		f.err = errFetchPanicked
		s.settleFlight(f)
	}
}

// Stats aggregates the segment counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evicted
		st.Shared += s.shared
		st.StaleServes += s.staleServes
		st.NegHits += s.negHits
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		st.Capacity += s.cap
		s.mu.Unlock()
	}
	return st
}

// Bytes returns the resident body bytes across segments.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of resident objects.
func (c *Cache) Len() int {
	n := 0
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// list is an intrusive doubly-linked LRU list: front = most recent. Recency
// is list position, maintained on access — no clocks, no counters that could
// overflow, nothing nondeterministic.
type list struct {
	head, tail *entry
}

func (l *list) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *list) moveToFront(e *entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

func (l *list) back() *entry { return l.tail }
