package objcache

import (
	"errors"
	"time"
)

// This file is the cache's origin-resilience surface: freshness windows,
// serve-stale-on-error, and brief negative caching of hard failures. Like the
// rest of the package it is clock-free — every API takes the caller's notion
// of now (virtual time on the simulation arm, wall-clock offset on the real
// arm), so the fleet simulation reproduces bit-identically. Callers that
// never pass a freshness window (FreshFor == 0) get exactly the legacy
// behavior: entries never go stale and nothing here runs.

// ErrNegativeCached reports that a lookup was refused because the URL's
// recent hard failure is still negatively cached and no stale body is
// resident to serve in its place.
var ErrNegativeCached = errors.New("objcache: negatively cached origin failure")

// Lookup classifies a ProbeAt result.
type Lookup int

const (
	// LookupMiss means nothing is resident.
	LookupMiss Lookup = iota
	// LookupFresh means a resident entry inside its freshness window.
	LookupFresh
	// LookupStale means a resident entry past its freshness window (or
	// explicitly marked stale): usable for serve-stale, due revalidation.
	LookupStale
)

// Outcome classifies how GetOrFetchStale satisfied a request.
type Outcome int

const (
	// OutcomeHit served a fresh resident entry.
	OutcomeHit Outcome = iota
	// OutcomeFetched contacted the origin (or joined a flight that did) and
	// got a response.
	OutcomeFetched
	// OutcomeStale served a resident-but-stale entry because the origin
	// failed past its retry budget or the failure is negatively cached.
	OutcomeStale
	// OutcomeFailed means the origin failed and nothing stale was resident;
	// the error is returned.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeFetched:
		return "fetched"
	case OutcomeStale:
		return "stale"
	case OutcomeFailed:
		return "failed"
	}
	return "unknown"
}

// fresh reports whether e is inside its freshness window at now.
func (s *segment) fresh(e *entry, now time.Duration) bool {
	if e.stale {
		return false
	}
	return s.freshFor == 0 || now-e.storedAt < s.freshFor
}

// PutAt is Put with an explicit store time: the entry is fresh until
// now+FreshFor (forever when FreshFor is 0). A successful store also clears
// any negative-cache window and stale mark for the key — the origin just
// proved itself healthy.
func (c *Cache) PutAt(obj Object, now time.Duration) {
	key := Key(obj.URL)
	s := c.segFor(key)
	s.mu.Lock()
	s.putAtLocked(key, obj, now)
	s.mu.Unlock()
}

func (s *segment) putAtLocked(key string, obj Object, now time.Duration) {
	if obj.Status >= 400 || int64(len(obj.Body)) > s.cap {
		// putLocked would reject it; don't refresh whatever old entry is
		// resident off the back of an inadmissible store.
		return
	}
	delete(s.neg, key)
	if e := s.putLocked(key, obj); e != nil {
		e.storedAt = now
		e.stale = false
	}
}

// ProbeAt classifies what the cache holds for url at now, refreshing recency
// on a fresh hit (a stale probe is not an access — the caller decides whether
// the entry is ultimately served).
func (c *Cache) ProbeAt(url string, now time.Duration) (Object, Lookup) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return Object{}, LookupMiss
	}
	if s.fresh(e, now) {
		s.hits++
		s.lru.moveToFront(e)
		return e.obj, LookupFresh
	}
	return e.obj, LookupStale
}

// MarkStale forces url's resident entry (if any) out of its freshness window
// so the next lookup revalidates at the origin.
func (c *Cache) MarkStale(url string) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.stale = true
	}
	s.mu.Unlock()
}

// NoteFailure negatively caches a hard origin failure for url: until
// now+NegTTL, callers should serve stale (or fail fast) instead of
// re-contacting the origin — the lid on retry storms. A zero NegTTL disables
// negative caching.
func (c *Cache) NoteFailure(url string, now time.Duration) {
	key := Key(url)
	s := c.segFor(key)
	if s.negTTL == 0 {
		return
	}
	s.mu.Lock()
	s.neg[key] = now + s.negTTL
	s.mu.Unlock()
}

// NegativeActive reports whether url's negative-cache window covers now.
func (c *Cache) NegativeActive(url string, now time.Duration) bool {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	until, ok := s.neg[key]
	if !ok {
		return false
	}
	if now >= until {
		delete(s.neg, key)
		return false
	}
	s.negHits++
	return true
}

// ServeStale returns url's resident entry regardless of freshness, counting
// a stale serve. The caller has decided the origin cannot be (re)contacted.
func (c *Cache) ServeStale(url string) (Object, bool) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return Object{}, false
	}
	s.staleServes++
	s.lru.moveToFront(e)
	return e.obj, true
}

// GetOrFetchStale is GetOrFetch with freshness, serve-stale-on-error, and
// negative caching, for the real (blocking) arm:
//
//   - a fresh resident entry is a hit;
//   - a negatively cached failure serves the stale body if one is resident,
//     else fails fast with ErrNegativeCached — the origin is not contacted;
//   - otherwise the origin is fetched (single-flight across callers; a stale
//     resident entry stays served to nobody while exactly one caller
//     revalidates);
//   - on fetch success the entry is stored fresh at now;
//   - on fetch failure the failure is negatively cached and the stale body is
//     served if resident, else the error surfaces.
func (c *Cache) GetOrFetchStale(url string, now time.Duration, fetch func() (Object, error)) (Object, Outcome, error) {
	key := Key(url)
	s := c.segFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && s.fresh(e, now) {
		s.hits++
		s.lru.moveToFront(e)
		obj := e.obj
		s.mu.Unlock()
		return obj, OutcomeHit, nil
	}
	if until, ok := s.neg[key]; ok && now < until {
		s.negHits++
		if e, ok := s.entries[key]; ok {
			s.staleServes++
			s.lru.moveToFront(e)
			obj := e.obj
			s.mu.Unlock()
			return obj, OutcomeStale, nil
		}
		s.misses++
		s.mu.Unlock()
		return Object{}, OutcomeFailed, ErrNegativeCached
	}
	s.misses++
	if f, ok := s.flights[key]; ok {
		s.shared++
		s.mu.Unlock()
		<-f.done
		if f.err == nil {
			return f.obj, OutcomeFetched, nil
		}
		return c.staleOrFail(s, key, f.err)
	}
	f := s.openFlightLocked(key)
	s.mu.Unlock()

	defer s.settleFlightOnPanic(f)
	f.obj, f.err = fetch()
	if f.err == nil {
		s.mu.Lock()
		s.putAtLocked(key, f.obj, now)
		s.mu.Unlock()
		s.settleFlight(f)
		return f.obj, OutcomeFetched, nil
	}
	s.mu.Lock()
	if s.negTTL > 0 {
		s.neg[key] = now + s.negTTL
	}
	s.mu.Unlock()
	s.settleFlight(f)
	return c.staleOrFail(s, key, f.err)
}

// staleOrFail resolves a failed fetch: the stale resident body when there is
// one, the fetch error otherwise.
func (c *Cache) staleOrFail(s *segment, key string, fetchErr error) (Object, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.staleServes++
		s.lru.moveToFront(e)
		return e.obj, OutcomeStale, nil
	}
	return Object{}, OutcomeFailed, fetchErr
}
