package objcache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func obj(url, validator string, n int, fill byte) Object {
	body := bytes.Repeat([]byte{fill}, n)
	return Object{URL: url, ContentType: "text/plain", Status: 200, Validator: validator, Body: body}
}

func TestKeyCanonicalization(t *testing.T) {
	cases := [][2]string{
		{"http://A.Example.com/x", "http://a.example.com/x"},
		{"HTTP://a.example.com/x", "http://a.example.com/x"},
		{"http://a.example.com:80/x", "http://a.example.com/x"},
		{"http://a.example.com/x#frag", "http://a.example.com/x"},
		{"http://a.example.com/Path?Q=1", "http://a.example.com/Path?Q=1"}, // path/query stay case-sensitive
		{"a.example.com/x", "a.example.com/x"},
	}
	for _, c := range cases {
		if got := Key(c[0]); got != c[1] {
			t.Errorf("Key(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestGetPutAndValidatorGenerations(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Segments: 4})
	c.Put(obj("http://d0.test/a", "v1", 100, 'a'))
	got, ok := c.Get("http://D0.test/a#frag")
	if !ok || got.Body[0] != 'a' {
		t.Fatalf("canonicalized lookup missed: ok=%v obj=%+v", ok, got)
	}

	// Same validator, different body: first insert wins (purity).
	c.Put(obj("http://d0.test/a", "v1", 100, 'b'))
	if got, _ := c.Get("http://d0.test/a"); got.Body[0] != 'a' {
		t.Fatalf("same-validator re-put replaced the body: %q", got.Body[0])
	}

	// New validator: new generation replaces the entry.
	c.Put(obj("http://d0.test/a", "v2", 50, 'c'))
	got, _ = c.Get("http://d0.test/a")
	if got.Validator != "v2" || got.Body[0] != 'c' || len(got.Body) != 50 {
		t.Fatalf("new validator did not replace the entry: %+v", got)
	}

	// Error statuses are never admitted.
	c.Put(Object{URL: "http://d0.test/404", Status: 404, Validator: "e", Body: []byte("nope")})
	if _, ok := c.Get("http://d0.test/404"); ok {
		t.Fatal("cache admitted a 404")
	}
}

// TestEvictionBoundedMemory proves the byte budget holds under sustained
// insertion pressure: resident bytes never exceed capacity, eviction counters
// move, and recently-touched entries survive over cold ones.
func TestEvictionBoundedMemory(t *testing.T) {
	const capacity = 64 << 10
	c := New(Config{Capacity: capacity, Segments: 4})
	for i := 0; i < 2000; i++ {
		c.Put(obj(fmt.Sprintf("http://d%d.test/o%d", i%7, i), "v", 1024, byte(i)))
		if got := c.Bytes(); got > capacity {
			t.Fatalf("insert %d: resident bytes %d exceed capacity %d", i, got, capacity)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("2 MB through a 64 KB cache evicted nothing")
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("stats report %d bytes over %d capacity", st.Bytes, st.Capacity)
	}
	if st.Entries != c.Len() {
		t.Fatalf("stats entries %d != Len %d", st.Entries, c.Len())
	}

	// An object larger than a segment's share is refused outright.
	c.Put(obj("http://huge.test/x", "v", capacity, 'h'))
	if _, ok := c.Get("http://huge.test/x"); ok {
		t.Fatal("cache admitted an object larger than a segment budget")
	}

	// LRU: touch one key, flood its segment, the touched key outlives peers
	// inserted at the same time.
	c2 := New(Config{Capacity: 8 << 10, Segments: 1})
	c2.Put(obj("http://d.test/keep", "v", 1024, 'k'))
	c2.Put(obj("http://d.test/drop", "v", 1024, 'd'))
	c2.Get("http://d.test/keep")
	for i := 0; i < 7; i++ {
		c2.Put(obj(fmt.Sprintf("http://d.test/f%d", i), "v", 1024, byte(i)))
	}
	if _, ok := c2.Get("http://d.test/keep"); !ok {
		t.Error("recently-touched entry was evicted before cold peers")
	}
	if _, ok := c2.Get("http://d.test/drop"); ok {
		t.Error("cold entry survived while the segment overflowed")
	}
}

// TestSingleFlightReturnsOneFetch asserts concurrent GetOrFetch misses on one
// key share a single origin fetch and all observe its result.
func TestSingleFlightReturnsOneFetch(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Segments: 2})
	var fetches atomic.Int64
	release := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	results := make([]Object, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, hit, err := c.GetOrFetch("http://d.test/one", func() (Object, error) {
				fetches.Add(1)
				<-release
				return obj("http://d.test/one", "v1", 64, 'x'), nil
			})
			if err != nil || hit {
				t.Errorf("caller %d: hit=%v err=%v", i, hit, err)
			}
			results[i] = got
		}(i)
	}
	// Let the herd pile onto the flight, then release the one fetch.
	for c.Stats().Shared < callers-1 {
	}
	close(release)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d callers caused %d fetches, want 1", callers, n)
	}
	for i, r := range results {
		if !bytes.Equal(r.Body, results[0].Body) {
			t.Fatalf("caller %d observed a different body", i)
		}
	}
	if st := c.Stats(); st.Shared != callers-1 {
		t.Fatalf("shared counter %d, want %d", st.Shared, callers-1)
	}
	// The flight's result is now resident.
	if _, hit, _ := c.GetOrFetch("http://d.test/one", nil); !hit {
		t.Fatal("flight result not resident after completion")
	}
}

// TestSingleFlightErrorNotCached: a failed fetch propagates to every joined
// caller and leaves nothing resident, so the next caller retries.
func TestSingleFlightErrorNotCached(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Segments: 1})
	boom := errors.New("origin down")
	_, _, err := c.GetOrFetch("http://d.test/x", func() (Object, error) { return Object{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want origin error", err)
	}
	var retried bool
	_, hit, err := c.GetOrFetch("http://d.test/x", func() (Object, error) {
		retried = true
		return obj("http://d.test/x", "v", 8, 'y'), nil
	})
	if err != nil || hit || !retried {
		t.Fatalf("after a failed flight: hit=%v err=%v retried=%v", hit, err, retried)
	}
}

// TestConcurrentChurnPayloadIdentity is the -race battery: concurrent
// get/put/evict across overlapping keys under eviction pressure, with the key
// purity invariant checked on every read — one (key, validator) pair must
// never yield two different payloads, no matter how the schedule interleaves.
func TestConcurrentChurnPayloadIdentity(t *testing.T) {
	const (
		workers = 8
		keys    = 40
		iters   = 2000
	)
	c := New(Config{Capacity: 24 << 10, Segments: 4}) // tight: constant eviction
	bodyFor := func(k int) byte { return byte('A' + k%26) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(keys)
				url := fmt.Sprintf("http://d%d.test/obj%d", k%5, k)
				switch rng.Intn(3) {
				case 0:
					c.Put(obj(url, "v1", 512+k, bodyFor(k)))
				case 1:
					if got, ok := c.Get(url); ok {
						if got.Validator == "v1" && (len(got.Body) != 512+k || got.Body[0] != bodyFor(k)) {
							t.Errorf("key %s yielded a foreign payload (len=%d first=%q)", url, len(got.Body), got.Body[0])
							return
						}
					}
				default:
					got, hit, err := c.GetOrFetch(url, func() (Object, error) {
						return obj(url, "v1", 512+k, bodyFor(k)), nil
					})
					if err != nil {
						t.Errorf("GetOrFetch %s: %v", url, err)
						return
					}
					_ = hit
					if len(got.Body) != 512+k || got.Body[0] != bodyFor(k) {
						t.Errorf("GetOrFetch %s yielded a foreign payload", url)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Bytes(); got > 24<<10 {
		t.Fatalf("resident bytes %d exceed capacity after churn", got)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("churn did not exercise all paths: %+v", st)
	}
}

// TestDisabledCacheAdmitsNothing: the zero-capacity cache is a valid sink.
func TestDisabledCacheAdmitsNothing(t *testing.T) {
	c := New(Config{Capacity: 0, Segments: 2})
	c.Put(obj("http://d.test/a", "v", 10, 'a'))
	if _, ok := c.Get("http://d.test/a"); ok {
		t.Fatal("zero-capacity cache admitted an object")
	}
	if _, hit, err := c.GetOrFetch("http://d.test/a", func() (Object, error) {
		return obj("http://d.test/a", "v", 10, 'a'), nil
	}); hit || err != nil {
		t.Fatalf("zero-capacity GetOrFetch: hit=%v err=%v", hit, err)
	}
}

// TestGetOrFetchPanicSettlesFlight pins the single-flight panic fix: a fetch
// that panics must still settle its flight (delete the slot and close done),
// so a later caller of the same key starts a fresh fetch instead of joining a
// dead flight and blocking forever.
func TestGetOrFetchPanicSettlesFlight(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Segments: 1})
	const url = "http://d.test/panic"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fetch panic did not propagate to the caller")
			}
		}()
		c.GetOrFetch(url, func() (Object, error) { panic("origin exploded") })
	}()

	done := make(chan struct{})
	var hit bool
	var err error
	go func() {
		defer close(done)
		_, hit, err = c.GetOrFetch(url, func() (Object, error) {
			return obj(url, "v", 8, 'z'), nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second GetOrFetch hung: the panicking fetch leaked its flight")
	}
	if err != nil || hit {
		t.Fatalf("second fetch after panic: hit=%v err=%v", hit, err)
	}
}

// TestGetOrFetchPanicWakesJoiners: a caller already parked on the flight's
// done channel when the owner's fetch panics must wake with errFetchPanicked,
// not hang.
func TestGetOrFetchPanicWakesJoiners(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Segments: 1})
	const url = "http://d.test/panic-join"
	inFetch := make(chan struct{})
	proceed := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		defer func() { recover() }()
		c.GetOrFetch(url, func() (Object, error) {
			close(inFetch)
			<-proceed
			panic("origin exploded")
		})
	}()
	<-inFetch

	joinErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrFetch(url, func() (Object, error) {
			t.Error("joiner ran its own fetch; expected to join the open flight")
			return Object{}, nil
		})
		joinErr <- err
	}()
	// Shared increments under the segment lock the moment the joiner commits
	// to the flight; only then may the owner be allowed to panic.
	for c.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	<-ownerDone
	select {
	case err := <-joinErr:
		if !errors.Is(err, errFetchPanicked) {
			t.Fatalf("joiner err = %v, want errFetchPanicked", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner never woke: panicking fetch left done unclosed")
	}
}
