package objcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func staleCache(freshFor, negTTL time.Duration) *Cache {
	return New(Config{Capacity: 1 << 20, Segments: 1, FreshFor: freshFor, NegTTL: negTTL})
}

func sobj(url, body string) Object {
	return Object{URL: url, ContentType: "text/html", Status: 200, Validator: "v-" + body, Body: []byte(body)}
}

func TestProbeAtFreshnessWindow(t *testing.T) {
	c := staleCache(10*time.Second, 0)
	c.PutAt(sobj("http://a.com/x", "one"), 5*time.Second)

	if _, lk := c.ProbeAt("http://a.com/x", 6*time.Second); lk != LookupFresh {
		t.Fatalf("inside window: %v", lk)
	}
	if o, lk := c.ProbeAt("http://a.com/x", 20*time.Second); lk != LookupStale || string(o.Body) != "one" {
		t.Fatalf("past window: %v, body %q", lk, o.Body)
	}
	if _, lk := c.ProbeAt("http://a.com/other", 0); lk != LookupMiss {
		t.Fatalf("missing url: %v", lk)
	}
}

func TestZeroFreshForNeverStale(t *testing.T) {
	c := staleCache(0, 0)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	if _, lk := c.ProbeAt("http://a.com/x", 1000*time.Hour); lk != LookupFresh {
		t.Fatalf("FreshFor=0 entry went stale: %v", lk)
	}
}

func TestMarkStaleForcesRevalidation(t *testing.T) {
	c := staleCache(time.Hour, 0)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	c.MarkStale("http://a.com/x")
	if _, lk := c.ProbeAt("http://a.com/x", time.Second); lk != LookupStale {
		t.Fatalf("marked entry not stale: %v", lk)
	}
	// A successful re-store clears the mark.
	c.PutAt(sobj("http://a.com/x", "one"), 2*time.Second)
	if _, lk := c.ProbeAt("http://a.com/x", 3*time.Second); lk != LookupFresh {
		t.Fatalf("re-stored entry still stale: %v", lk)
	}
}

func TestNegativeCacheWindow(t *testing.T) {
	c := staleCache(0, 5*time.Second)
	c.NoteFailure("http://a.com/x", 10*time.Second)
	if !c.NegativeActive("http://a.com/x", 12*time.Second) {
		t.Fatal("window not active at +2s")
	}
	if c.NegativeActive("http://a.com/x", 15*time.Second) {
		t.Fatal("window active at exactly TTL")
	}
	// Expired windows are pruned and stay inactive.
	if c.NegativeActive("http://a.com/x", 16*time.Second) {
		t.Fatal("window active after expiry")
	}
	st := c.Stats()
	if st.NegHits != 1 {
		t.Fatalf("NegHits = %d, want 1", st.NegHits)
	}
}

func TestNoteFailureNoopWithoutNegTTL(t *testing.T) {
	c := staleCache(0, 0)
	c.NoteFailure("http://a.com/x", 0)
	if c.NegativeActive("http://a.com/x", 0) {
		t.Fatal("negative caching active with NegTTL=0")
	}
}

func TestPutClearsNegativeWindow(t *testing.T) {
	c := staleCache(0, time.Minute)
	c.NoteFailure("http://a.com/x", 0)
	c.PutAt(sobj("http://a.com/x", "recovered"), time.Second)
	if c.NegativeActive("http://a.com/x", 2*time.Second) {
		t.Fatal("successful store left the negative window up")
	}
}

func TestRejectedPutDoesNotRefresh(t *testing.T) {
	c := staleCache(10*time.Second, time.Minute)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	c.NoteFailure("http://a.com/x", 15*time.Second)
	// A 503 response must neither refresh the stale entry nor clear the
	// negative window.
	c.PutAt(Object{URL: "http://a.com/x", Status: 503, Validator: "err", Body: []byte("oops")}, 16*time.Second)
	if _, lk := c.ProbeAt("http://a.com/x", 17*time.Second); lk != LookupStale {
		t.Fatalf("rejected store refreshed entry: %v", lk)
	}
	if !c.NegativeActive("http://a.com/x", 17*time.Second) {
		t.Fatal("rejected store cleared negative window")
	}
}

func TestServeStaleCountsAndServes(t *testing.T) {
	c := staleCache(time.Second, 0)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	o, ok := c.ServeStale("http://a.com/x")
	if !ok || string(o.Body) != "one" {
		t.Fatalf("ServeStale = %v %q", ok, o.Body)
	}
	if _, ok := c.ServeStale("http://a.com/none"); ok {
		t.Fatal("served stale for absent key")
	}
	if st := c.Stats(); st.StaleServes != 1 {
		t.Fatalf("StaleServes = %d, want 1", st.StaleServes)
	}
}

func TestGetOrFetchStaleFreshHit(t *testing.T) {
	c := staleCache(10*time.Second, time.Second)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	o, out, err := c.GetOrFetchStale("http://a.com/x", 5*time.Second, func() (Object, error) {
		t.Fatal("fetched despite fresh entry")
		return Object{}, nil
	})
	if err != nil || out != OutcomeHit || string(o.Body) != "one" {
		t.Fatalf("out=%v err=%v body=%q", out, err, o.Body)
	}
}

func TestGetOrFetchStaleRevalidates(t *testing.T) {
	c := staleCache(10*time.Second, time.Second)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	o, out, err := c.GetOrFetchStale("http://a.com/x", 30*time.Second, func() (Object, error) {
		return sobj("http://a.com/x", "two"), nil
	})
	if err != nil || out != OutcomeFetched || string(o.Body) != "two" {
		t.Fatalf("out=%v err=%v body=%q", out, err, o.Body)
	}
	// Entry is fresh again (new validator generation replaced the old body).
	if o2, lk := c.ProbeAt("http://a.com/x", 35*time.Second); lk != LookupFresh || string(o2.Body) != "two" {
		t.Fatalf("after revalidate: %v %q", lk, o2.Body)
	}
}

func TestGetOrFetchStaleServesStaleOnFailure(t *testing.T) {
	c := staleCache(10*time.Second, 5*time.Second)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	boom := errors.New("origin down")
	o, out, err := c.GetOrFetchStale("http://a.com/x", 30*time.Second, func() (Object, error) {
		return Object{}, boom
	})
	if err != nil || out != OutcomeStale || string(o.Body) != "one" {
		t.Fatalf("out=%v err=%v body=%q", out, err, o.Body)
	}
	// The failure is negatively cached: the next call inside the window must
	// serve stale without invoking fetch.
	o, out, err = c.GetOrFetchStale("http://a.com/x", 32*time.Second, func() (Object, error) {
		t.Fatal("fetched inside negative window")
		return Object{}, nil
	})
	if err != nil || out != OutcomeStale || string(o.Body) != "one" {
		t.Fatalf("neg window: out=%v err=%v body=%q", out, err, o.Body)
	}
	st := c.Stats()
	if st.StaleServes != 2 || st.NegHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrFetchStaleFailsWithNothingResident(t *testing.T) {
	c := staleCache(0, 5*time.Second)
	boom := errors.New("origin down")
	_, out, err := c.GetOrFetchStale("http://a.com/x", 0, func() (Object, error) {
		return Object{}, boom
	})
	if out != OutcomeFailed || !errors.Is(err, boom) {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Inside the negative window with nothing resident: fail fast.
	_, out, err = c.GetOrFetchStale("http://a.com/x", time.Second, func() (Object, error) {
		t.Fatal("fetched inside negative window")
		return Object{}, nil
	})
	if out != OutcomeFailed || !errors.Is(err, ErrNegativeCached) {
		t.Fatalf("neg window: out=%v err=%v", out, err)
	}
	// Past the window the origin is retried.
	o, out, err := c.GetOrFetchStale("http://a.com/x", 10*time.Second, func() (Object, error) {
		return sobj("http://a.com/x", "back"), nil
	})
	if err != nil || out != OutcomeFetched || string(o.Body) != "back" {
		t.Fatalf("recovery: out=%v err=%v body=%q", out, err, o.Body)
	}
}

func TestGetOrFetchStaleSingleFlight(t *testing.T) {
	c := staleCache(10*time.Second, time.Second)
	const callers = 8
	gate := make(chan struct{})
	var fetches int
	var mu sync.Mutex
	var wg sync.WaitGroup
	outcomes := make([]Outcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out, err := c.GetOrFetchStale("http://a.com/x", 0, func() (Object, error) {
				<-gate
				mu.Lock()
				fetches++
				mu.Unlock()
				return sobj("http://a.com/x", "one"), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = out
		}(i)
	}
	// Give the callers a moment to pile onto the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (single flight)", fetches)
	}
	for i, out := range outcomes {
		if out != OutcomeFetched {
			t.Fatalf("caller %d outcome %v", i, out)
		}
	}
}

func TestGetOrFetchStaleJoinerGetsStaleOnFailure(t *testing.T) {
	c := staleCache(10*time.Second, time.Second)
	c.PutAt(sobj("http://a.com/x", "one"), 0)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	results := make([]Outcome, 2)
	go func() {
		defer wg.Done()
		_, out, _ := c.GetOrFetchStale("http://a.com/x", 30*time.Second, func() (Object, error) {
			close(entered)
			<-gate
			return Object{}, errors.New("origin down")
		})
		results[0] = out
	}()
	go func() {
		defer wg.Done()
		<-entered // the first caller owns the flight
		_, out, _ := c.GetOrFetchStale("http://a.com/x", 30*time.Second, func() (Object, error) {
			t.Error("joiner fetched")
			return Object{}, nil
		})
		results[1] = out
	}()
	go func() {
		// Let the joiner actually join before the flight fails.
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	wg.Wait()
	if results[0] != OutcomeStale || results[1] != OutcomeStale {
		t.Fatalf("outcomes = %v, want both stale", results)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for out, want := range map[Outcome]string{
		OutcomeHit: "hit", OutcomeFetched: "fetched", OutcomeStale: "stale",
		OutcomeFailed: "failed", Outcome(42): "unknown",
	} {
		if out.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(out), out.String(), want)
		}
	}
}

func TestStaleLayerKeepsLegacyPathIdentical(t *testing.T) {
	// A cache configured without FreshFor/NegTTL must behave exactly like the
	// legacy cache through the legacy API even when stale APIs are poked.
	c := New(Config{Capacity: 1 << 20, Segments: 4})
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("http://a.com/%d", i)
		c.Put(sobj(url, fmt.Sprintf("body-%d", i)))
	}
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("http://a.com/%d", i)
		if _, ok := c.Get(url); !ok {
			t.Fatalf("legacy get missed %s", url)
		}
	}
	st := c.Stats()
	if st.StaleServes != 0 || st.NegHits != 0 {
		t.Fatalf("legacy path touched stale counters: %+v", st)
	}
}

// TestGetOrFetchStalePanicSettlesFlight is the stale-arm twin of the
// GetOrFetch panic regression: a panicking revalidation fetch must settle its
// flight so the key stays fetchable.
func TestGetOrFetchStalePanicSettlesFlight(t *testing.T) {
	c := staleCache(10*time.Second, 0)
	const url = "http://a.com/panic"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fetch panic did not propagate to the caller")
			}
		}()
		c.GetOrFetchStale(url, 0, func() (Object, error) { panic("origin exploded") })
	}()

	done := make(chan struct{})
	var out Outcome
	var err error
	go func() {
		defer close(done)
		_, out, err = c.GetOrFetchStale(url, time.Second, func() (Object, error) {
			return sobj(url, "fresh"), nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second GetOrFetchStale hung: the panicking fetch leaked its flight")
	}
	if err != nil || out != OutcomeFetched {
		t.Fatalf("second fetch after panic: outcome=%v err=%v", out, err)
	}
}
