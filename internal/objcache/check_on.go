//go:build simdebug

package objcache

import "fmt"

// checkAccounting recomputes the segment's byte total from its resident
// entries and panics on drift — the cache-side analogue of the arena
// double-free panics: an accounting bug must fail loudly in debug builds,
// not silently grow the proxy past its budget. Called with s.mu held.
func checkAccounting(s *segment) {
	var n int64
	for e := s.lru.head; e != nil; e = e.next {
		n += int64(len(e.obj.Body))
	}
	if n != s.bytes {
		panic(fmt.Sprintf("objcache: segment accounting drift: list holds %d bytes, counter says %d", n, s.bytes))
	}
	if n > s.cap {
		panic(fmt.Sprintf("objcache: segment over budget: %d resident bytes > %d cap", n, s.cap))
	}
}
