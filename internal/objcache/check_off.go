//go:build !simdebug

package objcache

// checkAccounting is a no-op without the simdebug tag; the debug build
// recomputes segment byte totals after every admission.
func checkAccounting(*segment) {}
