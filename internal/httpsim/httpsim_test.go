package httpsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/dnssim"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

type fixture struct {
	sim      *eventsim.Simulator
	net      *simnet.Network
	client   *Client
	server   *Server
	clientH  *simnet.Host
	originH  *simnet.Host
	resolver *dnssim.Resolver
}

func newFixture(t *testing.T, store Store, maxConns int) *fixture {
	t.Helper()
	sim := eventsim.New(1)
	n := simnet.New(sim)
	clientH := n.AddHost("client", simnet.HostConfig{DownlinkBps: 1e6, UplinkBps: 250e3})
	originH := n.AddHost("origin", simnet.HostConfig{})
	dnsH := n.AddHost("dns", simnet.HostConfig{})
	n.SetPath(clientH, originH, simnet.PathParams{RTT: 80 * time.Millisecond})
	n.SetPath(clientH, dnsH, simnet.PathParams{RTT: 70 * time.Millisecond})
	dnssim.NewServer(sim, dnsH, 0)
	resolver := dnssim.NewResolver(clientH, dnsH)
	server := NewServer(sim, originH, store, 0)
	dir := Directory{"example.com": originH}
	client := NewClient(sim, clientH, dir, resolver, maxConns)
	return &fixture{sim: sim, net: n, client: client, server: server, clientH: clientH, originH: originH, resolver: resolver}
}

func TestSplitURL(t *testing.T) {
	d, p := SplitURL("http://a.com/x/y.png")
	if d != "a.com" || p != "/x/y.png" {
		t.Fatalf("SplitURL = %q %q", d, p)
	}
	d, p = SplitURL("http://bare.com")
	if d != "bare.com" || p != "/" {
		t.Fatalf("SplitURL bare = %q %q", d, p)
	}
}

func TestSplitURLPanicsOnRelative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on relative URL")
		}
	}()
	SplitURL("/relative/path")
}

func TestGetReturnsBody(t *testing.T) {
	body := []byte("<html>hello</html>")
	f := newFixture(t, MapStore{"http://example.com/": {URL: "http://example.com/", ContentType: "text/html", Body: body}}, 6)
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 200 {
		t.Fatalf("status = %d", got.Status)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatalf("body = %q", got.Body)
	}
	if got.ContentType != "text/html" {
		t.Fatalf("content type = %q", got.ContentType)
	}
}

func TestMissingObjectIs404(t *testing.T) {
	f := newFixture(t, MapStore{}, 6)
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/nope"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 404 {
		t.Fatalf("status = %d, want 404", got.Status)
	}
}

func TestObjectStatusOverride(t *testing.T) {
	f := newFixture(t, MapStore{"http://example.com/gone": {Status: 204}}, 6)
	var got Response
	f.client.Do(Request{URL: "http://example.com/gone"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 204 {
		t.Fatalf("status = %d, want 204", got.Status)
	}
}

func TestDNSAddsLatencyOnlyOnce(t *testing.T) {
	store := MapStore{}
	for i := 0; i < 2; i++ {
		u := fmt.Sprintf("http://example.com/%d", i)
		store[u] = Object{URL: u, Body: []byte("x")}
	}
	f := newFixture(t, store, 1)
	var t0, t1 time.Duration
	f.client.Do(Request{URL: "http://example.com/0"}, func(r Response, at time.Duration) { t0 = at })
	f.sim.Run()
	issued := f.sim.Now()
	f.client.Do(Request{URL: "http://example.com/1"}, func(r Response, at time.Duration) { t1 = at })
	f.sim.Run()
	if f.resolver.Lookups != 1 || f.resolver.Hits != 1 {
		t.Fatalf("lookups=%d hits=%d", f.resolver.Lookups, f.resolver.Hits)
	}
	// First request pays DNS (70ms) + handshake (80ms) + req/rsp (80ms).
	if t0 < 225*time.Millisecond {
		t.Fatalf("first response at %v, want > 225ms", t0)
	}
	// Second reuses conn and cache: about one RTT after issued.
	if d := t1 - issued; d > 100*time.Millisecond {
		t.Fatalf("second response took %v after issue, want ≈ 1 RTT", d)
	}
}

func TestConnectionCapRespected(t *testing.T) {
	store := MapStore{}
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("http://example.com/%d", i)
		store[u] = Object{URL: u, Body: bytes.Repeat([]byte("a"), 5000)}
	}
	f := newFixture(t, store, 6)
	var done int
	for i := 0; i < 20; i++ {
		f.client.Do(Request{URL: fmt.Sprintf("http://example.com/%d", i)}, func(r Response, at time.Duration) { done++ })
	}
	f.sim.Run()
	if done != 20 {
		t.Fatalf("completed %d, want 20", done)
	}
	if got := f.client.OpenConns("example.com"); got != 6 {
		t.Fatalf("OpenConns = %d, want 6", got)
	}
	if f.client.ConnsOpened != 6 {
		t.Fatalf("ConnsOpened = %d, want 6", f.client.ConnsOpened)
	}
}

func TestSingleConnSerializesRequests(t *testing.T) {
	store := MapStore{
		"http://example.com/a": {Body: []byte("a")},
		"http://example.com/b": {Body: []byte("b")},
	}
	f := newFixture(t, store, 1)
	var order []string
	f.client.Do(Request{URL: "http://example.com/a"}, func(r Response, at time.Duration) { order = append(order, "a") })
	f.client.Do(Request{URL: "http://example.com/b"}, func(r Response, at time.Duration) { order = append(order, "b") })
	f.sim.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestServerThinkTime(t *testing.T) {
	sim := eventsim.New(1)
	n := simnet.New(sim)
	clientH := n.AddHost("client", simnet.HostConfig{})
	originH := n.AddHost("origin", simnet.HostConfig{})
	n.SetPath(clientH, originH, simnet.PathParams{RTT: 10 * time.Millisecond})
	NewServer(sim, originH, MapStore{"http://example.com/": {Body: []byte("x")}}, 50*time.Millisecond)
	client := NewClient(sim, clientH, Directory{"example.com": originH}, nil, 6)
	var done time.Duration
	client.Do(Request{URL: "http://example.com/"}, func(r Response, at time.Duration) { done = at })
	sim.Run()
	// handshake 10ms + request 5ms + think 50ms + response 5ms ≈ 70ms
	if done < 70*time.Millisecond || done > 80*time.Millisecond {
		t.Fatalf("done at %v, want ≈ 70ms", done)
	}
}

func TestRequestCountTracked(t *testing.T) {
	f := newFixture(t, MapStore{"http://example.com/": {Body: []byte("x")}}, 6)
	for i := 0; i < 3; i++ {
		f.client.Do(Request{URL: "http://example.com/"}, func(Response, time.Duration) {})
	}
	f.sim.Run()
	if f.client.RequestsSent != 3 || f.server.Requests != 3 {
		t.Fatalf("client sent %d, server saw %d; want 3/3", f.client.RequestsSent, f.server.Requests)
	}
}

func TestPostCarriesBodySize(t *testing.T) {
	req := Request{Method: "POST", URL: "http://example.com/submit", BodySize: 5000}
	if req.WireSize() <= 5000 {
		t.Fatalf("WireSize = %d, want > body size", req.WireSize())
	}
}

func TestCloseIdleClosesConnections(t *testing.T) {
	f := newFixture(t, MapStore{"http://example.com/": {Body: []byte("x")}}, 6)
	f.client.Do(Request{URL: "http://example.com/"}, func(Response, time.Duration) {})
	f.sim.Run()
	f.client.CloseIdle()
	f.sim.Run()
	// No assertion beyond "does not panic and completes" — the FIN packets
	// are observable in traces; here we just exercise the path.
	if f.client.OpenConns("example.com") != 1 {
		t.Fatalf("pool forgot its conn")
	}
}
