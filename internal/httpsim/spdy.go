package httpsim

import (
	"time"

	"github.com/parcel-go/parcel/internal/dnssim"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

// SPDYClient models a SPDY-style transport (§3): a single multiplexed
// connection per server domain, with no one-outstanding-request limit —
// requests for a domain are pipelined onto its one stream as soon as they
// are issued. What it does NOT change is who identifies objects: discovery
// stays on the (slow) client, which is why the paper expects SPDY alone not
// to close the gap ("the performance with SPDY is limited by how quickly the
// less capable mobile client issues requests", §4.3).
type SPDYClient struct {
	sched    *eventsim.Simulator
	host     *simnet.Host
	dir      Directory
	resolver *dnssim.Resolver

	conns map[string]*spdyConn

	// RequestsSent counts requests put on the wire.
	RequestsSent int
	// ConnsOpened counts TCP connections dialed (one per domain).
	ConnsOpened int
}

type spdyConn struct {
	conn    *simnet.Conn
	ready   bool
	pending []Request // queued until the handshake completes
	// inFlight maps URL to response callbacks (SPDY stream demux).
	inFlight map[string][]func(Response, time.Duration)
}

// NewSPDYClient builds a SPDY-style client.
func NewSPDYClient(sched *eventsim.Simulator, host *simnet.Host, dir Directory, resolver *dnssim.Resolver) *SPDYClient {
	return &SPDYClient{
		sched: sched, host: host, dir: dir, resolver: resolver,
		conns: make(map[string]*spdyConn),
	}
}

// Do issues req on the domain's multiplexed stream.
func (c *SPDYClient) Do(req Request, cb func(Response, time.Duration)) {
	domain, _ := SplitURL(req.URL)
	start := func(time.Duration) {
		sc := c.conns[domain]
		if sc == nil {
			sc = &spdyConn{inFlight: make(map[string][]func(Response, time.Duration))}
			c.conns[domain] = sc
			c.ConnsOpened++
			remote := c.dir.HostFor(domain)
			sc.conn = c.host.Dial(remote, func(*simnet.Conn) {
				sc.ready = true
				queued := sc.pending
				sc.pending = nil
				for _, q := range queued {
					c.send(sc, q)
				}
			})
			sc.conn.OnMessage(c.host, func(m simnet.Message) {
				resp, ok := m.Payload.(Response)
				if !ok {
					return
				}
				cbs := sc.inFlight[resp.URL]
				if len(cbs) == 0 {
					return
				}
				sc.inFlight[resp.URL] = cbs[1:]
				cbs[0](resp, m.At)
			})
		}
		sc.inFlight[req.URL] = append(sc.inFlight[req.URL], cb)
		if !sc.ready {
			sc.pending = append(sc.pending, req)
			return
		}
		c.send(sc, req)
	}
	if c.resolver != nil {
		c.resolver.Resolve(domain, start)
	} else {
		start(0)
	}
}

func (c *SPDYClient) send(sc *spdyConn, req Request) {
	c.RequestsSent++
	// SPDY header compression shaves most of the request overhead.
	size := req.WireSize() / 3
	if size < 60 {
		size = 60
	}
	sc.conn.Send(c.host, size, req, req.URL, nil)
}

// TotalConns reports open connections (== domains contacted).
func (c *SPDYClient) TotalConns() int { return len(c.conns) }
