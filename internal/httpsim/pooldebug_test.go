//go:build simdebug

package httpsim

import "testing"

// These tests only exist under -tags simdebug: they prove the pendingReq
// pool ownership check actually fires. In normal builds the check compiles
// to nothing, so there is nothing to test there.

func TestDoubleFreePendingReqPanics(t *testing.T) {
	var c Client
	pr := c.newReq()
	c.releaseReq(pr)
	defer func() {
		if recover() == nil {
			t.Fatal("double releaseReq: expected panic, got none")
		}
	}()
	c.releaseReq(pr)
}

// TestPendingReqReuseAfterFree sanity-checks the happy path under the debug
// build: allocate, free, re-allocate — the recycled request must come back
// with the pooled flag cleared so a later legitimate free succeeds.
func TestPendingReqReuseAfterFree(t *testing.T) {
	var c Client
	pr := c.newReq()
	c.releaseReq(pr)
	q := c.newReq()
	if q != pr {
		t.Fatal("free list did not recycle the released pendingReq")
	}
	if q.pooled {
		t.Fatal("recycled pendingReq still marked pooled")
	}
	c.releaseReq(q) // must not panic
}
