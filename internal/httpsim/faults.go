package httpsim

import (
	"fmt"
	"hash/fnv"
	"time"
)

// OriginFaults configures server-side fault injection: origin errors, stalled
// responses, truncated bodies, and timed availability flaps. The zero value
// injects nothing, and an inactive config consumes no RNG draws and schedules
// no events — the same discipline as simnet's link faults, so golden figures
// stay bit-identical with faults off.
type OriginFaults struct {
	// ErrorRate is the probability a request is answered 503 outright.
	ErrorRate float64
	// StallRate is the probability the response is delayed by StallFor on top
	// of the server's think time (a slow origin, not a dead one).
	StallRate float64
	// PartialRate is the probability the response body is truncated mid-way
	// and the transfer reported failed (status 502 with a half body).
	PartialRate float64
	// StallFor is the extra delay a stalled response waits (default 2 s).
	StallFor time.Duration
	// Flaps are windows of virtual time during which the origin answers every
	// request 503 — a timed outage, checked before any probability draw.
	Flaps []FlapWindow
}

// FlapWindow is a half-open [Start, End) window of origin unavailability.
type FlapWindow struct {
	Start time.Duration
	End   time.Duration
}

// Active reports whether any fault injection is configured.
func (f OriginFaults) Active() bool {
	return f.ErrorRate > 0 || f.StallRate > 0 || f.PartialRate > 0 || len(f.Flaps) > 0
}

// Validate rejects rates outside [0,1] (individually and summed — the three
// faults are drawn from one uniform sample) and inverted flap windows.
func (f OriginFaults) Validate() error {
	for name, r := range map[string]float64{
		"ErrorRate": f.ErrorRate, "StallRate": f.StallRate, "PartialRate": f.PartialRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("httpsim: %s %v outside [0,1]", name, r)
		}
	}
	if sum := f.ErrorRate + f.StallRate + f.PartialRate; sum > 1 {
		return fmt.Errorf("httpsim: fault rates sum to %v > 1", sum)
	}
	if f.StallFor < 0 {
		return fmt.Errorf("httpsim: negative StallFor %v", f.StallFor)
	}
	for _, w := range f.Flaps {
		if w.End <= w.Start || w.Start < 0 {
			return fmt.Errorf("httpsim: bad flap window [%v, %v)", w.Start, w.End)
		}
	}
	return nil
}

// flapping reports whether now falls inside a flap window.
func (f OriginFaults) flapping(now time.Duration) bool {
	for _, w := range f.Flaps {
		if now >= w.Start && now < w.End {
			return true
		}
	}
	return false
}

// OriginFaultStats counts faults the server injected.
type OriginFaultStats struct {
	Errors     int // 503s from ErrorRate
	Stalls     int // responses delayed by StallFor
	Partials   int // truncated bodies
	FlapErrors int // 503s inside flap windows
}

// Total sums every injected fault.
func (s OriginFaultStats) Total() int {
	return s.Errors + s.Stalls + s.Partials + s.FlapErrors
}

// SetFaults arms fault injection on the server. Call before traffic; pass the
// zero value to disarm.
func (s *Server) SetFaults(f OriginFaults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.StallFor == 0 {
		f.StallFor = 2 * time.Second
	}
	s.faults = f
	return nil
}

// FaultStats returns the faults injected so far.
func (s *Server) FaultStats() OriginFaultStats { return s.stats }

// faultDecision is what the server decided to do to one request.
type faultDecision int

const (
	faultNone faultDecision = iota
	faultError
	faultStall
	faultPartial
	faultFlap
)

// decideFault rolls the server's fault dice for one request. Inactive
// configs return faultNone without touching the RNG; flap windows are
// checked first and consume no draw either. The single uniform draw is cut
// by cumulative rate thresholds so relative fault mix is exactly as
// configured.
func (s *Server) decideFault() faultDecision {
	if !s.faults.Active() {
		return faultNone
	}
	if s.faults.flapping(s.sched.Now()) {
		s.stats.FlapErrors++
		return faultFlap
	}
	u := s.sched.Rand().Float64()
	switch {
	case u < s.faults.ErrorRate:
		s.stats.Errors++
		return faultError
	case u < s.faults.ErrorRate+s.faults.StallRate:
		s.stats.Stalls++
		return faultStall
	case u < s.faults.ErrorRate+s.faults.StallRate+s.faults.PartialRate:
		s.stats.Partials++
		return faultPartial
	}
	return faultNone
}

// ContentValidator is the canonical content-hash validator both arms use as
// the cache ETag: FNV-64a over the body, hex-encoded. Same bytes, same
// validator — which is exactly the objcache generation contract.
func ContentValidator(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%016x", h.Sum64())
}
