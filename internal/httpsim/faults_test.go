package httpsim

import (
	"bytes"
	"testing"
	"time"
)

func faultStore() MapStore {
	return MapStore{
		"http://example.com/": {URL: "http://example.com/", ContentType: "text/html", Body: []byte("<html>0123456789</html>")},
	}
}

func TestOriginFaultsValidate(t *testing.T) {
	good := []OriginFaults{
		{},
		{ErrorRate: 0.5, StallRate: 0.3, PartialRate: 0.2},
		{Flaps: []FlapWindow{{Start: time.Second, End: 2 * time.Second}}},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Fatalf("good config %+v rejected: %v", f, err)
		}
	}
	bad := []OriginFaults{
		{ErrorRate: -0.1},
		{StallRate: 1.5},
		{ErrorRate: 0.6, StallRate: 0.6},
		{StallFor: -time.Second},
		{Flaps: []FlapWindow{{Start: 2 * time.Second, End: time.Second}}},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("bad config %+v accepted", f)
		}
	}
}

func TestOriginFaultsInactiveDrawsNothing(t *testing.T) {
	// Two identical runs, one with SetFaults(zero value) and one without,
	// must consume identical RNG state: an inactive config is free.
	run := func(arm bool) (int64, Response) {
		f := newFixture(t, faultStore(), 6)
		if arm {
			if err := f.server.SetFaults(OriginFaults{}); err != nil {
				t.Fatal(err)
			}
		}
		var got Response
		f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
		f.sim.Run()
		return f.sim.Rand().Int63(), got
	}
	d1, r1 := run(false)
	d2, r2 := run(true)
	if d1 != d2 {
		t.Fatalf("inactive faults perturbed RNG: %d vs %d", d1, d2)
	}
	if r1.Status != 200 || r2.Status != 200 || !bytes.Equal(r1.Body, r2.Body) {
		t.Fatalf("inactive faults changed responses: %+v vs %+v", r1, r2)
	}
}

func TestOriginFaultErrorRate(t *testing.T) {
	f := newFixture(t, faultStore(), 6)
	if err := f.server.SetFaults(OriginFaults{ErrorRate: 1}); err != nil {
		t.Fatal(err)
	}
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 503 {
		t.Fatalf("status = %d, want 503", got.Status)
	}
	if s := f.server.FaultStats(); s.Errors != 1 || s.Total() != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOriginFaultStallDelaysResponse(t *testing.T) {
	stall := 3 * time.Second
	f := newFixture(t, faultStore(), 6)
	if err := f.server.SetFaults(OriginFaults{StallRate: 1, StallFor: stall}); err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, t time.Duration) { got, at = r, t })
	f.sim.Run()
	if got.Status != 200 {
		t.Fatalf("stalled response status = %d", got.Status)
	}
	if at < stall {
		t.Fatalf("response at %v, want >= stall %v", at, stall)
	}
	if s := f.server.FaultStats(); s.Stalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOriginFaultPartialTruncatesBody(t *testing.T) {
	full := faultStore()["http://example.com/"].Body
	f := newFixture(t, faultStore(), 6)
	if err := f.server.SetFaults(OriginFaults{PartialRate: 1}); err != nil {
		t.Fatal(err)
	}
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 502 {
		t.Fatalf("partial status = %d, want 502", got.Status)
	}
	if len(got.Body) != len(full)/2 {
		t.Fatalf("partial body %d bytes, want %d", len(got.Body), len(full)/2)
	}
	// The truncated response carries the full body's validator, so a retry
	// that succeeds lands in the same cache generation.
	if got.Validator != ContentValidator(full) {
		t.Fatalf("partial validator %q != full-body validator %q", got.Validator, ContentValidator(full))
	}
}

func TestOriginFaultFlapWindow(t *testing.T) {
	f := newFixture(t, faultStore(), 6)
	// Requests land shortly after t=0 (DNS + handshake); flap the origin for
	// the first 10 virtual seconds so the first request hits the window.
	if err := f.server.SetFaults(OriginFaults{Flaps: []FlapWindow{{Start: 0, End: 10 * time.Second}}}); err != nil {
		t.Fatal(err)
	}
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Status != 503 {
		t.Fatalf("flapped status = %d, want 503", got.Status)
	}
	if s := f.server.FaultStats(); s.FlapErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOriginFaultsDeterministic(t *testing.T) {
	run := func() (oks, errs int) {
		f := newFixture(t, faultStore(), 6)
		if err := f.server.SetFaults(OriginFaults{ErrorRate: 0.5}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) {
				if r.Status == 200 {
					oks++
				} else {
					errs++
				}
			})
		}
		f.sim.Run()
		return oks, errs
	}
	o1, e1 := run()
	o2, e2 := run()
	if o1 != o2 || e1 != e2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", o1, e1, o2, e2)
	}
	if o1 == 0 || e1 == 0 {
		t.Fatalf("50%% error rate produced %d oks, %d errors", o1, e1)
	}
}

func TestValidatorThreading(t *testing.T) {
	pinned := faultStore()
	obj := pinned["http://example.com/"]
	obj.Validator = "etag-pinned"
	pinned["http://example.com/"] = obj
	f := newFixture(t, pinned, 6)
	var got Response
	f.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { got = r })
	f.sim.Run()
	if got.Validator != "etag-pinned" {
		t.Fatalf("pinned validator not served: %q", got.Validator)
	}

	// Derived validator: content hash, stable across requests.
	f2 := newFixture(t, faultStore(), 6)
	var v1, v2 string
	f2.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { v1 = r.Validator })
	f2.client.Do(Request{Method: "GET", URL: "http://example.com/"}, func(r Response, at time.Duration) { v2 = r.Validator })
	f2.sim.Run()
	want := ContentValidator(faultStore()["http://example.com/"].Body)
	if v1 != want || v2 != want {
		t.Fatalf("derived validators %q/%q, want %q", v1, v2, want)
	}
}
