// Package httpsim layers HTTP/1.1 request–response semantics over the simnet
// TCP model: origin servers that serve objects from a store, and clients with
// per-domain persistent-connection pools (the "6 connections per domain" a
// traditional browser uses, §8.1), DNS resolution, and one outstanding
// request per connection (no pipelining — the limitation PARCEL sidesteps).
package httpsim

import (
	"fmt"
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/dnssim"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

const (
	// requestOverhead approximates HTTP request-line + header bytes.
	requestOverhead = 350
	// responseOverhead approximates HTTP status-line + header bytes.
	responseOverhead = 320
)

// Request is an HTTP request in flight.
type Request struct {
	Method   string
	URL      string // absolute: http://domain/path
	BodySize int    // POST body bytes (0 for GET)
}

// WireSize is the bytes the request occupies on the wire.
func (r Request) WireSize() int { return requestOverhead + len(r.URL) + r.BodySize }

// Response is an HTTP response.
type Response struct {
	Status      int
	URL         string
	ContentType string
	Body        []byte // actual content; parsers consume this
	// Validator is the origin's content validator (ETag): the stored object's
	// Validator if set, otherwise ContentValidator over the body. Truncated
	// (partial-fault) responses keep the full body's validator, so a retry
	// that fetches the complete object lands in the same cache generation.
	Validator string
}

// WireSize is the bytes the response occupies on the wire.
func (r Response) WireSize() int { return responseOverhead + len(r.Body) }

// SplitURL returns the domain and path of an absolute http(s) URL. It panics
// on malformed URLs: every URL in the system is machine-generated, so a bad
// one is a generator or parser bug.
func SplitURL(url string) (domain, path string) {
	domain, path, _ = SplitURLScheme(url)
	return domain, path
}

// SplitURLScheme additionally reports whether the URL is https.
func SplitURLScheme(url string) (domain, path string, tls bool) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		rest, ok = strings.CutPrefix(url, "https://")
		if !ok {
			panic(fmt.Sprintf("httpsim: non-absolute URL %q", url))
		}
		tls = true
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return rest, "/", tls
	}
	return rest[:slash], rest[slash:], tls
}

// Object is stored origin content.
type Object struct {
	URL         string
	ContentType string
	Body        []byte
	Status      int // 0 means 200
	// Validator optionally pins the object's content validator (ETag). Empty
	// means servers derive one from the body with ContentValidator.
	Validator string
}

// Store resolves a URL to origin content.
type Store interface {
	Get(url string) (Object, bool)
}

// MapStore is a trivial in-memory Store.
type MapStore map[string]Object

// Get implements Store.
func (m MapStore) Get(url string) (Object, bool) {
	o, ok := m[url]
	return o, ok
}

// tlsHello and tlsDone model the TLS setup exchange on https connections:
// one extra round trip carrying a client hello and the server certificate.
type tlsHello struct{}

type tlsDone struct{}

const (
	tlsHelloSize = 330
	tlsCertSize  = 3200
)

// Server serves objects from a store at a simnet host. One Server instance
// handles every connection arriving at its host.
type Server struct {
	sched *eventsim.Simulator
	host  *simnet.Host
	store Store
	think time.Duration

	faults OriginFaults
	stats  OriginFaultStats
	// validators memoizes ContentValidator per URL: origin stores are
	// immutable within a run, and hashing a large body on every request would
	// put real work on the hot path for nothing.
	validators map[string]string

	// Requests counts requests served (including 404s).
	Requests int
}

// NewServer installs an HTTP server on host serving from store, with a fixed
// per-request processing (think) time. sched is the simulation the host
// belongs to.
func NewServer(sched *eventsim.Simulator, host *simnet.Host, store Store, think time.Duration) *Server {
	s := &Server{sched: sched, host: host, store: store, think: think, validators: make(map[string]string)}
	host.Listen(func(c *simnet.Conn) {
		c.OnMessage(host, func(m simnet.Message) {
			if _, isHello := m.Payload.(tlsHello); isHello {
				c.Send(host, tlsCertSize, tlsDone{}, "tls", nil)
				return
			}
			req, ok := m.Payload.(Request)
			if !ok {
				return
			}
			s.Requests++
			fault := s.decideFault()
			if fault == faultError || fault == faultFlap {
				resp := Response{Status: 503, URL: req.URL, Body: []byte("origin unavailable")}
				c.Send(host, resp.WireSize(), resp, req.URL, nil)
				return
			}
			respond := func() {
				obj, found := s.store.Get(req.URL)
				resp := Response{Status: 200, URL: req.URL, ContentType: obj.ContentType, Body: obj.Body}
				if !found {
					resp = Response{Status: 404, URL: req.URL, Body: []byte("not found")}
				} else if obj.Status != 0 {
					resp.Status = obj.Status
				}
				if found {
					resp.Validator = s.validatorFor(req.URL, obj)
				}
				if fault == faultPartial && resp.Status == 200 {
					// A truncated transfer: half the body arrives, then the
					// connection-level failure surfaces as a 502. The
					// validator stays the full body's so a successful retry
					// joins the same cache generation.
					resp.Status = 502
					resp.Body = resp.Body[:len(resp.Body)/2]
				}
				c.Send(host, resp.WireSize(), resp, req.URL, nil)
			}
			delay := s.think
			if fault == faultStall {
				delay += s.faults.StallFor
			}
			if delay > 0 {
				sched.Schedule(delay, respond)
			} else {
				respond()
			}
		})
	})
	return s
}

// validatorFor resolves obj's content validator, memoizing derived hashes.
func (s *Server) validatorFor(url string, obj Object) string {
	if obj.Validator != "" {
		return obj.Validator
	}
	if v, ok := s.validators[url]; ok {
		return v
	}
	v := ContentValidator(obj.Body)
	s.validators[url] = v
	return v
}

// Directory maps domain names to the simnet hosts that serve them.
type Directory map[string]*simnet.Host

// HostFor returns the host serving domain; panics on unknown domains, which
// indicates broken topology wiring.
func (d Directory) HostFor(domain string) *simnet.Host {
	h, ok := d[domain]
	if !ok {
		panic(fmt.Sprintf("httpsim: no host for domain %q", domain))
	}
	return h
}

// Client issues HTTP requests from a host, with DNS resolution, per-domain
// connection pools of bounded size, and a browser-like cap on total parallel
// connections (2014-era mobile engines pooled ~17 connections overall — one
// of the reasons "all the objects cannot be requested in parallel", §3).
type Client struct {
	sched    *eventsim.Simulator
	host     *simnet.Host
	dir      Directory
	resolver *dnssim.Resolver
	maxConns int
	maxTotal int

	pools map[string]*pool
	// poolList holds the pools in creation order. Every behaviour-affecting
	// iteration walks this slice, never the map: map iteration order is
	// randomized per process, and iterating it to pick an eviction victim (or
	// to close connections) made simulation runs nondeterministic.
	poolList   []*pool
	queue      []*pendingReq
	totalConns int

	// reqArena/reqFree recycle pendingReq structs through the same
	// block-arena + free-list scheme simnet uses for packets: the queue
	// churns once per request-dispatch opportunity, and without pooling it
	// dominated the client's steady-state allocations.
	reqArena []pendingReq
	reqFree  *pendingReq

	// RequestsSent counts requests put on the wire.
	RequestsSent int
	// ConnsOpened counts TCP connections dialed.
	ConnsOpened int
}

// NewClient builds a client. resolver may be nil (no DNS cost).
// maxConnsPerDomain <= 0 defaults to 6; maxTotalConns <= 0 means unlimited.
func NewClient(sched *eventsim.Simulator, host *simnet.Host, dir Directory, resolver *dnssim.Resolver, maxConnsPerDomain int) *Client {
	if maxConnsPerDomain <= 0 {
		maxConnsPerDomain = 6
	}
	return &Client{
		sched: sched, host: host, dir: dir, resolver: resolver,
		maxConns: maxConnsPerDomain, pools: make(map[string]*pool),
	}
}

// SetMaxTotalConns caps the client's total parallel connections across all
// domains (0 = unlimited). Call before issuing requests.
func (c *Client) SetMaxTotalConns(n int) { c.maxTotal = n }

type pool struct {
	domain  string
	conns   []*pconn
	dialing int // connections in handshake
	// pendingCap is drain-pass scratch: capacity already being created for
	// this domain at the start of the pass. Reset by every drain; replaces a
	// per-drain map allocation.
	pendingCap int
}

type pconn struct {
	conn    *simnet.Conn
	busy    bool
	ready   bool // handshake finished
	current func(Response, time.Duration)
}

//parcelvet:pooled
type pendingReq struct {
	domain string // pool key (prefixed for TLS)
	origin string // logical domain
	tls    bool
	req    Request
	cb     func(Response, time.Duration)

	nextFree *pendingReq
	pooled   bool // on the free list; double-release check under -tags simdebug
}

// reqBlockSize is how many pendingReq structs one arena block holds.
const reqBlockSize = 64

// newReq carves a pendingReq off the free list or the arena.
func (c *Client) newReq() *pendingReq {
	if pr := c.reqFree; pr != nil {
		c.reqFree = pr.nextFree
		pr.nextFree = nil
		pr.pooled = false
		return pr
	}
	if len(c.reqArena) == 0 {
		c.reqArena = make([]pendingReq, reqBlockSize)
	}
	pr := &c.reqArena[0]
	c.reqArena = c.reqArena[1:]
	return pr
}

// releaseReq returns a dispatched request to the free list, dropping its
// callback and request references.
func (c *Client) releaseReq(pr *pendingReq) {
	checkReqFree(pr)
	*pr = pendingReq{nextFree: c.reqFree, pooled: true}
	c.reqFree = pr
}

// Do issues req and invokes cb with the response. Connection management
// mirrors a traditional browser: reuse an idle persistent connection, dial a
// new one when below the per-domain and total caps, otherwise queue. An
// https URL uses a separate connection pool whose setup includes the TLS
// exchange (one extra round trip).
func (c *Client) Do(req Request, cb func(Response, time.Duration)) {
	domain, _, tls := SplitURLScheme(req.URL)
	key := domain
	if tls {
		key = "tls:" + domain
	}
	start := func(time.Duration) {
		pr := c.newReq()
		pr.domain, pr.origin, pr.tls, pr.req, pr.cb = key, domain, tls, req, cb
		c.queue = append(c.queue, pr)
		c.drain()
	}
	if c.resolver != nil {
		c.resolver.Resolve(domain, start)
	} else {
		start(0)
	}
}

// drain issues every queued request that can proceed, in FIFO order per
// opportunity: a request runs on an idle ready connection for its domain, or
// dials a new connection when below both caps; otherwise it keeps waiting
// (later requests for other domains may still proceed). Connections in
// handshake count as capacity already being created for their domain, so a
// drain pass never dials more connections than a domain has waiting
// requests.
func (c *Client) drain() {
	// Capacity being created per domain in this pass.
	for _, p := range c.poolList {
		p.pendingCap = p.dialing
	}
	// In-place compaction: issued requests are released back to the free
	// list, waiting ones slide down, and the tail is nil'd so the backing
	// array does not pin released structs. No per-drain allocation.
	kept := 0
	for i := 0; i < len(c.queue); i++ {
		pr := c.queue[i]
		if c.tryIssue(pr) {
			c.releaseReq(pr)
			continue
		}
		c.queue[kept] = pr
		kept++
	}
	for i := kept; i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = c.queue[:kept]
}

// tryIssue runs pr on an idle connection, or arranges capacity for it.
// It returns true only when the request was actually issued.
func (c *Client) tryIssue(pr *pendingReq) bool {
	p := c.pools[pr.domain]
	if p == nil {
		p = &pool{domain: pr.domain}
		c.pools[pr.domain] = p
		c.poolList = append(c.poolList, p)
	}
	for _, pc := range p.conns {
		if pc.ready && !pc.busy {
			c.issue(pc, pr)
			return true
		}
	}
	// Use capacity already being created (a handshake in flight) before
	// dialing more.
	if p.pendingCap > 0 {
		p.pendingCap--
		return false
	}
	if len(p.conns) >= c.maxConns {
		return false
	}
	if c.maxTotal > 0 && c.totalConns >= c.maxTotal {
		// Browser-like pool management: evict an idle connection of another
		// domain to make room; if none is idle, wait for a response.
		if !c.evictIdle(pr.domain) {
			return false
		}
	}
	c.dial(p, pr.origin, pr.tls)
	return false // the request stays queued until the handshake completes
}

// evictIdle closes one ready idle connection belonging to a different
// domain, returning true if room was made. Pools are scanned in creation
// order so the victim choice is deterministic.
func (c *Client) evictIdle(exceptDomain string) bool {
	for _, p := range c.poolList {
		if p.domain == exceptDomain {
			continue
		}
		for i, pc := range p.conns {
			if pc.ready && !pc.busy {
				pc.conn.Close()
				p.conns = append(p.conns[:i], p.conns[i+1:]...)
				c.totalConns--
				return true
			}
		}
	}
	return false
}

func (c *Client) dial(p *pool, origin string, tls bool) {
	remote := c.dir.HostFor(origin)
	pc := &pconn{}
	p.conns = append(p.conns, pc)
	c.ConnsOpened++
	c.totalConns++
	p.dialing++
	pc.conn = c.host.Dial(remote, func(conn *simnet.Conn) {
		if !tls {
			pc.ready = true
			p.dialing--
			c.drain()
			return
		}
		// TLS setup: hello out, certificate back, then ready.
		conn.Send(c.host, tlsHelloSize, tlsHello{}, "tls", nil)
	})
	pc.conn.OnMessage(c.host, func(m simnet.Message) {
		if _, isTLS := m.Payload.(tlsDone); isTLS {
			pc.ready = true
			p.dialing--
			c.drain()
			return
		}
		resp, ok := m.Payload.(Response)
		if !ok {
			return
		}
		done := pc.current
		pc.current = nil
		pc.busy = false
		if done != nil {
			done(resp, m.At)
		}
		c.drain()
	})
}

func (c *Client) issue(pc *pconn, pr *pendingReq) {
	pc.busy = true
	pc.current = pr.cb
	c.RequestsSent++
	pc.conn.Send(c.host, pr.req.WireSize(), pr.req, pr.req.URL, nil)
}

// OpenConns reports currently open connections for a domain (tests).
func (c *Client) OpenConns(domain string) int {
	p := c.pools[domain]
	if p == nil {
		return 0
	}
	return len(p.conns)
}

// TotalConns reports open connections across all domains.
func (c *Client) TotalConns() int { return c.totalConns }

// CloseIdle closes every pooled connection (end of a page session).
func (c *Client) CloseIdle() {
	for _, p := range c.poolList {
		for _, pc := range p.conns {
			if pc.ready && !pc.busy && !pc.conn.Closed() {
				pc.conn.Close()
			}
		}
	}
}
