//go:build !simdebug

package httpsim

// checkReqFree enforces the pendingReq pool ownership contract (no double
// frees). In normal builds it compiles to nothing; build with -tags simdebug
// to make a double free panic (see pooldebug_on.go).

func checkReqFree(*pendingReq) {}
