//go:build simdebug

package httpsim

import "fmt"

// With -tags simdebug every release checks the pooled flag, so returning a
// pendingReq to the free list twice — which would silently alias two queued
// requests onto one object — panics at the offending call site. This mirrors
// the simnet packet/outMsg checks: free in normal builds, loud in debug
// builds.

func checkReqFree(pr *pendingReq) {
	if pr.pooled {
		panic(fmt.Sprintf("httpsim: double free of pendingReq (url %q)", pr.req.URL))
	}
}
