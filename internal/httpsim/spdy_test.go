package httpsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

func spdyFixture(t *testing.T, store Store) (*eventsim.Simulator, *SPDYClient) {
	t.Helper()
	sim := eventsim.New(1)
	n := simnet.New(sim)
	clientH := n.AddHost("client", simnet.HostConfig{DownlinkBps: 1e6, UplinkBps: 250e3})
	a := n.AddHost("a", simnet.HostConfig{})
	b := n.AddHost("b", simnet.HostConfig{})
	n.SetPath(clientH, a, simnet.PathParams{RTT: 80 * time.Millisecond})
	n.SetPath(clientH, b, simnet.PathParams{RTT: 80 * time.Millisecond})
	NewServer(sim, a, store, 0)
	NewServer(sim, b, store, 0)
	dir := Directory{"a.com": a, "b.com": b}
	return sim, NewSPDYClient(sim, clientH, dir, nil)
}

func spdyStore(n int) MapStore {
	store := MapStore{}
	for i := 0; i < n; i++ {
		for _, d := range []string{"a.com", "b.com"} {
			u := fmt.Sprintf("http://%s/o%d", d, i)
			store[u] = Object{URL: u, Body: bytes.Repeat([]byte("x"), 3000)}
		}
	}
	return store
}

func TestSPDYOneConnPerDomain(t *testing.T) {
	sim, c := spdyFixture(t, spdyStore(10))
	done := 0
	for i := 0; i < 10; i++ {
		for _, d := range []string{"a.com", "b.com"} {
			c.Do(Request{URL: fmt.Sprintf("http://%s/o%d", d, i)}, func(Response, time.Duration) { done++ })
		}
	}
	sim.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	if c.ConnsOpened != 2 {
		t.Fatalf("conns = %d, want 2", c.ConnsOpened)
	}
	if c.TotalConns() != 2 {
		t.Fatalf("TotalConns = %d", c.TotalConns())
	}
}

func TestSPDYPipelinesBeforeHandshake(t *testing.T) {
	// All requests issued before the handshake completes still go out.
	sim, c := spdyFixture(t, spdyStore(5))
	done := 0
	for i := 0; i < 5; i++ {
		c.Do(Request{URL: fmt.Sprintf("http://a.com/o%d", i)}, func(Response, time.Duration) { done++ })
	}
	sim.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if c.RequestsSent != 5 {
		t.Fatalf("requests = %d", c.RequestsSent)
	}
}

func TestSPDYFasterThanSerialHTTPForManySmallObjects(t *testing.T) {
	// The multiplexing benefit: 20 small objects on one domain complete
	// sooner than with a single-connection HTTP/1.1 client (one outstanding
	// request at a time).
	store := spdyStore(20)
	simS, spdy := spdyFixture(t, store)
	var lastS time.Duration
	for i := 0; i < 20; i++ {
		spdy.Do(Request{URL: fmt.Sprintf("http://a.com/o%d", i)}, func(_ Response, at time.Duration) { lastS = at })
	}
	simS.Run()

	simH := eventsim.New(1)
	n := simnet.New(simH)
	clientH := n.AddHost("client", simnet.HostConfig{DownlinkBps: 1e6, UplinkBps: 250e3})
	a := n.AddHost("a", simnet.HostConfig{})
	n.SetPath(clientH, a, simnet.PathParams{RTT: 80 * time.Millisecond})
	NewServer(simH, a, store, 0)
	http1 := NewClient(simH, clientH, Directory{"a.com": a}, nil, 1)
	var lastH time.Duration
	for i := 0; i < 20; i++ {
		http1.Do(Request{URL: fmt.Sprintf("http://a.com/o%d", i)}, func(_ Response, at time.Duration) { lastH = at })
	}
	simH.Run()

	if lastS >= lastH {
		t.Fatalf("SPDY %v not faster than 1-conn HTTP %v", lastS, lastH)
	}
}

func TestEvictIdleMakesRoomForNewDomain(t *testing.T) {
	// With a total cap of 2 and two domains already holding idle conns, a
	// request for a third domain must evict one rather than deadlock.
	sim := eventsim.New(1)
	n := simnet.New(sim)
	clientH := n.AddHost("client", simnet.HostConfig{})
	hosts := map[string]*simnet.Host{}
	store := MapStore{}
	dir := Directory{}
	for _, d := range []string{"a.com", "b.com", "c.com"} {
		h := n.AddHost(d, simnet.HostConfig{})
		n.SetPath(clientH, h, simnet.PathParams{RTT: 40 * time.Millisecond})
		NewServer(sim, h, store, 0)
		hosts[d] = h
		dir[d] = h
		u := "http://" + d + "/x"
		store[u] = Object{URL: u, Body: []byte("x")}
	}
	c := NewClient(sim, clientH, dir, nil, 6)
	c.SetMaxTotalConns(2)
	done := map[string]bool{}
	for _, d := range []string{"a.com", "b.com"} {
		d := d
		c.Do(Request{URL: "http://" + d + "/x"}, func(Response, time.Duration) { done[d] = true })
	}
	sim.Run()
	c.Do(Request{URL: "http://c.com/x"}, func(Response, time.Duration) { done["c.com"] = true })
	sim.Run()
	for _, d := range []string{"a.com", "b.com", "c.com"} {
		if !done[d] {
			t.Fatalf("request to %s never completed (deadlock at total cap?)", d)
		}
	}
	if c.TotalConns() > 2 {
		t.Fatalf("total conns = %d exceeds cap", c.TotalConns())
	}
}

func TestHTTPSRequiresExtraRoundTrip(t *testing.T) {
	sim := eventsim.New(1)
	n := simnet.New(sim)
	clientH := n.AddHost("client", simnet.HostConfig{})
	h := n.AddHost("sec", simnet.HostConfig{})
	n.SetPath(clientH, h, simnet.PathParams{RTT: 100 * time.Millisecond})
	store := MapStore{
		"http://sec.com/x":  {URL: "http://sec.com/x", Body: []byte("plain")},
		"https://sec.com/x": {URL: "https://sec.com/x", Body: []byte("secure")},
	}
	NewServer(sim, h, store, 0)
	c := NewClient(sim, clientH, Directory{"sec.com": h}, nil, 6)
	var tPlain, tSecure time.Duration
	c.Do(Request{URL: "http://sec.com/x"}, func(_ Response, at time.Duration) { tPlain = at })
	sim.Run()
	c.Do(Request{URL: "https://sec.com/x"}, func(_ Response, at time.Duration) { tSecure = at })
	sim.Run()
	// Plain: handshake + request ≈ 2 RTT. Secure on a fresh pool: handshake
	// + TLS + request ≈ 3 RTT.
	if tSecure-tPlain < 90*time.Millisecond {
		t.Fatalf("https total %v vs http %v — missing TLS round trip", tSecure, tPlain)
	}
	// Separate pools: the https request dialed its own connection.
	if c.ConnsOpened != 2 {
		t.Fatalf("conns = %d, want 2 (separate pools)", c.ConnsOpened)
	}
}

func TestSplitURLScheme(t *testing.T) {
	d, p, tls := SplitURLScheme("https://a.com/x")
	if d != "a.com" || p != "/x" || !tls {
		t.Fatalf("https parse: %q %q %v", d, p, tls)
	}
	d, p, tls = SplitURLScheme("http://b.com")
	if d != "b.com" || p != "/" || tls {
		t.Fatalf("http parse: %q %q %v", d, p, tls)
	}
}
