package dnssim

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

func setup(t *testing.T, serverDelay time.Duration) (*eventsim.Simulator, *Resolver) {
	t.Helper()
	sim := eventsim.New(1)
	n := simnet.New(sim)
	client := n.AddHost("client", simnet.HostConfig{})
	dns := n.AddHost("dns", simnet.HostConfig{})
	n.SetPath(client, dns, simnet.PathParams{RTT: 70 * time.Millisecond})
	NewServer(sim, dns, serverDelay)
	return sim, NewResolver(client, dns)
}

func TestResolveTakesOneRTT(t *testing.T) {
	sim, r := setup(t, 0)
	var done time.Duration
	resolved := false
	r.Resolve("example.com", func(at time.Duration) {
		done = sim.Now()
		resolved = true
	})
	sim.Run()
	if !resolved {
		t.Fatal("never resolved")
	}
	if done < 70*time.Millisecond || done > 75*time.Millisecond {
		t.Fatalf("resolved at %v, want ≈ 70ms", done)
	}
	if r.Lookups != 1 {
		t.Fatalf("Lookups = %d, want 1", r.Lookups)
	}
}

func TestServerDelayAdds(t *testing.T) {
	sim, r := setup(t, 30*time.Millisecond)
	var done time.Duration
	r.Resolve("example.com", func(time.Duration) { done = sim.Now() })
	sim.Run()
	if done < 100*time.Millisecond || done > 106*time.Millisecond {
		t.Fatalf("resolved at %v, want ≈ 100ms", done)
	}
}

func TestCacheHit(t *testing.T) {
	sim, r := setup(t, 0)
	r.Resolve("example.com", func(time.Duration) {})
	sim.Run()
	var hitAt time.Duration = -1
	r.Resolve("example.com", func(time.Duration) { hitAt = sim.Now() })
	if hitAt != sim.Now() {
		t.Fatalf("cache hit not synchronous: %v", hitAt)
	}
	if r.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", r.Hits)
	}
}

func TestConcurrentLookupsCoalesce(t *testing.T) {
	sim, r := setup(t, 0)
	var done int
	for i := 0; i < 5; i++ {
		r.Resolve("shared.com", func(time.Duration) { done++ })
	}
	sim.Run()
	if done != 5 {
		t.Fatalf("callbacks = %d, want 5", done)
	}
	if r.Lookups != 1 {
		t.Fatalf("Lookups = %d, want 1 (coalesced)", r.Lookups)
	}
}

func TestDistinctNamesSeparateLookups(t *testing.T) {
	sim, r := setup(t, 0)
	r.Resolve("a.com", func(time.Duration) {})
	r.Resolve("b.com", func(time.Duration) {})
	sim.Run()
	if r.Lookups != 2 {
		t.Fatalf("Lookups = %d, want 2", r.Lookups)
	}
}

func TestFlushCache(t *testing.T) {
	sim, r := setup(t, 0)
	r.Resolve("a.com", func(time.Duration) {})
	sim.Run()
	r.FlushCache()
	r.Resolve("a.com", func(time.Duration) {})
	sim.Run()
	if r.Lookups != 1 {
		// Lookups was reset by FlushCache, so the second resolve counts 1.
		t.Fatalf("Lookups after flush = %d, want 1", r.Lookups)
	}
	if r.Hits != 0 {
		t.Fatalf("Hits after flush = %d, want 0", r.Hits)
	}
}
