// Package dnssim models DNS resolution over the network simulator: a
// resolver on a host exchanges datagrams with a DNS server host, caches
// answers, and coalesces concurrent lookups for the same name — the behaviour
// whose round-trips the paper counts against traditional browsers (§2.1).
package dnssim

import (
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/simnet"
)

const (
	querySize    = 60
	responseSize = 120
)

type query struct {
	name string
	id   uint64
}

type answer struct {
	name string
	id   uint64
}

// Server answers DNS queries arriving at its host after a fixed processing
// delay.
type Server struct {
	sim   *eventsim.Simulator
	host  *simnet.Host
	delay time.Duration
}

// NewServer installs a DNS server on host with the given per-query
// processing delay.
func NewServer(sim *eventsim.Simulator, host *simnet.Host, delay time.Duration) *Server {
	s := &Server{sim: sim, host: host, delay: delay}
	host.HandleDatagrams(func(from *simnet.Host, payload any, size int, at time.Duration) {
		q, ok := payload.(query)
		if !ok {
			return
		}
		send := func() {
			host.SendDatagram(from, responseSize, answer{name: q.name, id: q.id}, nil)
		}
		if s.delay > 0 {
			sim.Schedule(s.delay, send)
		} else {
			send()
		}
	})
	return s
}

// Resolver performs cached, coalesced lookups from a client host against one
// DNS server host.
type Resolver struct {
	host    *simnet.Host
	server  *simnet.Host
	cache   map[string]bool
	pending map[string][]func(at time.Duration)
	nextID  uint64

	// Lookups counts queries actually sent on the wire (cache misses).
	Lookups int
	// Hits counts lookups answered from cache.
	Hits int
}

// NewResolver installs a resolver on host, pointed at server. It takes over
// the host's datagram handler.
func NewResolver(host, server *simnet.Host) *Resolver {
	r := &Resolver{
		host:    host,
		server:  server,
		cache:   make(map[string]bool),
		pending: make(map[string][]func(at time.Duration)),
	}
	host.HandleDatagrams(func(from *simnet.Host, payload any, size int, at time.Duration) {
		a, ok := payload.(answer)
		if !ok {
			return
		}
		r.cache[a.name] = true
		waiters := r.pending[a.name]
		delete(r.pending, a.name)
		for _, w := range waiters {
			w(at)
		}
	})
	return r
}

// Resolve invokes cb when name is resolved: immediately (same event) on a
// cache hit, otherwise after a round-trip to the DNS server. Concurrent
// lookups for one name share a single query.
func (r *Resolver) Resolve(name string, cb func(at time.Duration)) {
	if r.cache[name] {
		r.Hits++
		cb(0)
		return
	}
	waiting := r.pending[name]
	r.pending[name] = append(waiting, cb)
	if len(waiting) > 0 {
		return // query already in flight
	}
	r.Lookups++
	r.nextID++
	r.host.SendDatagram(r.server, querySize, query{name: name, id: r.nextID}, nil)
}

// FlushCache drops all cached entries (used between experiment runs, like
// the paper's per-run cache flush in §7.3).
func (r *Resolver) FlushCache() {
	r.cache = make(map[string]bool)
	r.Lookups, r.Hits = 0, 0
}
