package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder satisfies TB and captures failures instead of failing the test.
type recorder struct {
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = format
	_ = args
}

func TestNoLeakPasses(t *testing.T) {
	rec := &recorder{}
	done := Check(rec)
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch) // goroutine exits within the grace window
	done()
	if rec.failed {
		t.Fatalf("clean test reported a leak: %s", rec.msg)
	}
}

func TestLeakDetected(t *testing.T) {
	rec := &recorder{}
	done := Check(rec)
	block := make(chan struct{})
	go func() { <-block }()
	// Shrink the wait by running the check in a goroutine we control: the
	// grace window is product behaviour, so just pay it once here.
	start := time.Now()
	done()
	if !rec.failed {
		t.Fatal("blocked goroutine not reported as leaked")
	}
	if time.Since(start) < grace {
		t.Fatalf("checker gave up before the grace window")
	}
	close(block)
}

func TestDiffMatchesByCreationSite(t *testing.T) {
	a := []string{"goroutine 5 [running]:\nfoo()\ncreated by pkg.A\n\tfile.go:1"}
	b := []string{
		"goroutine 9 [running]:\nbar()\ncreated by pkg.A\n\tfile.go:1",
		"goroutine 10 [running]:\nbaz()\ncreated by pkg.B\n\tfile.go:2",
	}
	leaked := diff(a, b)
	if len(leaked) != 1 || !strings.Contains(leaked[0], "pkg.B") {
		t.Fatalf("diff = %v, want just the pkg.B goroutine", leaked)
	}
}
