// Package leakcheck is a test helper that fails a test when it leaks
// goroutines. The fault-injection suites use it to prove that torn-down
// proxy sessions and degraded clients leave nothing running behind them.
//
// Usage:
//
//	defer leakcheck.Check(t)()
//
// Check snapshots the goroutines alive at the start of the test; the
// returned function re-counts at the end, retrying for a grace window so
// goroutines that are mid-exit (closed conn readers, draining HTTP
// keep-alives) get a chance to finish before they are declared leaked.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// ignoredStacks marks goroutines outside the code under test's control:
// runtime helpers and the test framework itself.
var ignoredStacks = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.tRunner",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime/trace",
	"signal.signal_recv",
	"created by runtime.gc",
	"leakcheck.interesting",
	"os/signal.loop",
	// net/http's global (per-Transport) idle-connection reaper is shared
	// process state, not a per-test leak.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.setupRewindBody",
}

// interesting returns the stacks of goroutines that count toward a leak.
func interesting() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
stacks:
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		for _, ig := range ignoredStacks {
			if strings.Contains(g, ig) {
				continue stacks
			}
		}
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// grace is how long the checker waits for in-flight goroutines to wind down.
const grace = 5 * time.Second

// Check snapshots the current goroutines and returns a function that fails t
// if new ones are still alive after the grace window. Designed for
// `defer leakcheck.Check(t)()`.
func Check(t TB) func() {
	before := interesting()
	return func() {
		t.Helper()
		var leaked []string
		deadline := time.Now().Add(grace)
		for {
			leaked = diff(before, interesting())
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// diff returns the stacks in after that were not present in before, compared
// by creation site (the "created by" line) so the same goroutine observed at
// two different program counters is not reported as new.
func diff(before, after []string) []string {
	seen := make(map[string]int, len(before))
	for _, g := range before {
		seen[site(g)]++
	}
	var out []string
	for _, g := range after {
		s := site(g)
		if seen[s] > 0 {
			seen[s]--
			continue
		}
		out = append(out, g)
	}
	return out
}

// site extracts a goroutine's identity for diffing: its "created by" line,
// falling back to the whole stack for main-like goroutines.
func site(stack string) string {
	if i := strings.Index(stack, "created by "); i >= 0 {
		line := stack[i:]
		if j := strings.IndexByte(line, '\n'); j >= 0 {
			line = line[:j]
		}
		return line
	}
	// No creation site (e.g. the main goroutine): identify by first line
	// minus the goroutine id.
	if j := strings.IndexByte(stack, '\n'); j >= 0 {
		first := stack[:j]
		if k := strings.IndexByte(first, '['); k >= 0 {
			return fmt.Sprintf("anon %s", first[k:])
		}
		return first
	}
	return stack
}
