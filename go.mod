module github.com/parcel-go/parcel

go 1.22

// parcel-vet (cmd/parcel-vet, internal/analysis) builds on the go/analysis
// framework. The sources under third_party/ are the subset of
// golang.org/x/tools that the Go toolchain itself vendors (go/analysis core,
// unitchecker, and their internal dependencies), so the build needs no
// network access and no module download.
require golang.org/x/tools v0.24.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools
