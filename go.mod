module github.com/parcel-go/parcel

go 1.22
