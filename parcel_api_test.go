package parcel_test

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel"
)

// The public-API tests exercise the facade the way a downstream user would.

func TestFacadeQuickstartFlow(t *testing.T) {
	pages := parcel.GeneratePages(1, 3)
	if len(pages) != 3 {
		t.Fatalf("pages = %d", len(pages))
	}
	page := pages[0]

	dir := parcel.RunDIR(parcel.BuildTopology(page, parcel.DefaultNetwork()))
	ind := parcel.RunPARCEL(parcel.BuildTopology(page, parcel.DefaultNetwork()), parcel.IND())
	if dir.OLT == 0 || ind.OLT == 0 {
		t.Fatal("schemes did not complete")
	}
	if ind.OLT >= dir.OLT {
		t.Fatalf("PARCEL OLT %v >= DIR %v", ind.OLT, dir.OLT)
	}
	if ind.HTTPRequests != 1 || dir.HTTPRequests <= 1 {
		t.Fatalf("request counts wrong: PARCEL %d, DIR %d", ind.HTTPRequests, dir.HTTPRequests)
	}
}

func TestFacadeSchedules(t *testing.T) {
	if parcel.IND().String() != "PARCEL(IND)" {
		t.Fatal("IND name")
	}
	if parcel.Threshold(512<<10).String() != "PARCEL(512K)" {
		t.Fatal("Threshold name")
	}
	if parcel.ONLD().String() != "PARCEL(ONLD)" {
		t.Fatal("ONLD name")
	}
}

func TestFacadeAllSchemesComplete(t *testing.T) {
	page := parcel.GeneratePages(9, 4)[1] // interactive page
	schemes := map[string]func() parcel.PageRun{
		"DIR":  func() parcel.PageRun { return parcel.RunDIR(parcel.BuildTopology(page, parcel.DefaultNetwork())) },
		"SPDY": func() parcel.PageRun { return parcel.RunSPDY(parcel.BuildTopology(page, parcel.DefaultNetwork())) },
		"CB":   func() parcel.PageRun { return parcel.RunCB(parcel.BuildTopology(page, parcel.DefaultNetwork())) },
		"PARCEL": func() parcel.PageRun {
			return parcel.RunPARCEL(parcel.BuildTopology(page, parcel.DefaultNetwork()), parcel.IND())
		},
	}
	for name, run := range schemes {
		r := run()
		if r.OLT <= 0 {
			t.Errorf("%s OLT = %v", name, r.OLT)
		}
		if r.RadioJ <= 0 {
			t.Errorf("%s radio = %v", name, r.RadioJ)
		}
	}
}

func TestFacadeRadioModel(t *testing.T) {
	p := parcel.DefaultLTERadio()
	if a := p.Alpha(); a < 0.7 || a > 0.78 {
		t.Fatalf("alpha = %v", a)
	}
	bStar := parcel.OptimalBundleSize(p, 6e6/8, 2<<20)
	if bStar < 800e3 || bStar > 1.05e6 {
		t.Fatalf("b* = %v", bStar)
	}
	rep := parcel.SimulateRadio(nil, p, 5*time.Second)
	if rep.TotalEnergy <= 0 {
		t.Fatal("idle trace has zero energy")
	}
}

func TestFacadeInteractiveSession(t *testing.T) {
	pages := parcel.GeneratePages(1, 4)
	page := parcel.InteractivePage(pages)
	topo := parcel.BuildTopology(page, parcel.DefaultNetwork())
	client := parcel.NewParcelSession(topo, parcel.DefaultProxyConfig(), parcel.DefaultClientConfig())
	client.Load()
	before := topo.ClientTrace.Len()
	if n := client.Engine.FireEvent("click", "gallery-next"); n == 0 {
		t.Fatal("no handler")
	}
	topo.Sim.Run()
	if topo.ClientTrace.Len() != before {
		t.Fatal("interaction hit the network")
	}
}

func TestFacadeHeadlineSmall(t *testing.T) {
	cfg := parcel.DefaultExperiments()
	cfg.Pages = 6
	cfg.Runs = 1
	cfg.Jitter = 0
	s := parcel.Headline(cfg)
	if s.OLTReduction <= 0 || s.EnergyReduction <= 0 {
		t.Fatalf("reductions: %+v", s)
	}
}
