// Benchmarks: one per table/figure of the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark runs a
// reduced sweep (the full 34-page × multi-round evaluation lives in
// cmd/parcel-bench) and reports the figure's headline quantity as a custom
// metric, so `go test -bench=.` regenerates the result shape end to end.
package parcel_test

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel"
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/experiments"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/stats"
	"github.com/parcel-go/parcel/internal/webgen"
)

// benchCfg is the reduced evaluation configuration for benchmarks.
func benchCfg(pages int) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Pages = pages
	cfg.Runs = 1
	cfg.Jitter = 0
	return cfg
}

func BenchmarkFig3_CellularVsWired(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchCfg(6))
		gap = stats.Median(r.CellularOLT) / stats.Median(r.WiredOLT)
	}
	b.ReportMetric(gap, "cellular/wired-OLT-ratio")
}

func BenchmarkFig5_DownloadPatterns(b *testing.B) {
	var bundles float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchCfg(6), 2)
		for _, s := range r.Series {
			if s.Scheme == "PARCEL(ONLD)" {
				bundles = float64(s.Bundles)
			}
		}
	}
	b.ReportMetric(bundles, "ONLD-bundles")
}

func BenchmarkFig6a_Timeline(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6a(benchCfg(6))
		ratio = r.DIRClientOLT.Seconds() / r.ParcelClientOLT.Seconds()
	}
	b.ReportMetric(ratio, "DIR/PARCEL-OLT-ratio")
}

func BenchmarkFig6b_LatencyCDF(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6bAndEnergy(benchCfg(8))
		reduction = 1 - stats.Median(r.ParcelOLT)/stats.Median(r.DIROLT)
	}
	b.ReportMetric(100*reduction, "OLT-reduction-%")
}

func BenchmarkFig6c_Correlation(b *testing.B) {
	var corr float64
	for i := 0; i < b.N; i++ {
		corr = experiments.Fig6c(benchCfg(8)).Correlation
	}
	b.ReportMetric(corr, "pearson-r")
}

func BenchmarkFig7a_RRCStates(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7a(benchCfg(6))
		ratio = float64(r.DIRTransitions) / float64(r.ParcelTransitions)
	}
	b.ReportMetric(ratio, "DIR/PARCEL-transitions")
}

func BenchmarkFig7b_EnergyCDF(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6bAndEnergy(benchCfg(8))
		reduction = 1 - stats.Median(r.ParcelEnergy)/stats.Median(r.DIREnergy)
	}
	b.ReportMetric(100*reduction, "energy-reduction-%")
}

func BenchmarkFig8_InteractiveSession(b *testing.B) {
	var cbGrowth float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchCfg(6))
		cb, _ := r.SchemeNamed("CB")
		cbGrowth = cb.Points[len(cb.Points)-1].CumRadioJ - cb.Points[0].CumRadioJ
	}
	b.ReportMetric(cbGrowth, "CB-click-radio-J")
}

func BenchmarkFig9_BundleVariants(b *testing.B) {
	var onldIncrease float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchCfg(6))
		onldIncrease = stats.Median(r.OLTIncrease["PARCEL(ONLD)"])
	}
	b.ReportMetric(onldIncrease, "ONLD-OLT-increase-s")
}

func BenchmarkFig10_RealServersOLT(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1011(benchCfg(8))
		reduction = 1 - stats.Median(r.ParcelOLT)/stats.Median(r.DIROLT)
	}
	b.ReportMetric(100*reduction, "OLT-reduction-%")
}

func BenchmarkFig11_RealServersEnergy(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1011(benchCfg(8))
		reduction = 1 - stats.Median(r.ParcelEnergy)/stats.Median(r.DIREnergy)
	}
	b.ReportMetric(100*reduction, "energy-reduction-%")
}

func BenchmarkTable1_SchemeProperties(b *testing.B) {
	var conns float64
	for i := 0; i < b.N; i++ {
		m := experiments.MeasureTable1(benchCfg(6))
		conns = float64(m.DIRClientConns)
	}
	b.ReportMetric(conns, "DIR-conns")
	b.ReportMetric(1, "PARCEL-conns")
}

func BenchmarkModel_OptimalBundle(b *testing.B) {
	var bStar float64
	for i := 0; i < b.N; i++ {
		bStar = experiments.Model().OptimalBundle
	}
	b.ReportMetric(bStar/1e3, "bstar-KB")
}

func BenchmarkDelaySensitivity(b *testing.B) {
	var penaltyGrowth float64
	for i := 0; i < b.N; i++ {
		r := experiments.DelaySensitivity(benchCfg(4))
		k20, k60 := (20 * time.Millisecond).String(), (60 * time.Millisecond).String()
		pen20 := r.MedianOLT[k20]["PARCEL(ONLD)"] - r.MedianOLT[k20]["PARCEL(IND)"]
		pen60 := r.MedianOLT[k60]["PARCEL(ONLD)"] - r.MedianOLT[k60]["PARCEL(IND)"]
		penaltyGrowth = pen60 - pen20
	}
	b.ReportMetric(penaltyGrowth, "ONLD-penalty-growth-s")
}

// BenchmarkSweepSerialVsParallel runs the same DIR+PARCEL(IND) sweep with a
// one-worker pool and a per-CPU pool and reports the wall-clock speedup. On a
// single-CPU machine both arms take the serial path and the ratio sits at
// ~1.0x; on a 4-core runner the parallel arm should cut the sweep at least in
// half (cmd/parcel-bench benchsweep records the same ratio to BENCH_sweep.json).
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	cfg := benchCfg(8)
	cfg.Runs = 2
	cfg.Jitter = 2 * time.Millisecond
	schemes := []experiments.Scheme{
		experiments.DIRScheme,
		experiments.ParcelScheme(sched.ConfigIND),
	}
	b.ReportAllocs()
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Parallelism = 1
		t0 := time.Now()
		experiments.Sweep(cfg, schemes)
		serial += time.Since(t0)

		cfg.Parallelism = 0 // one worker per CPU
		t1 := time.Now()
		experiments.Sweep(cfg, schemes)
		parallel += time.Since(t1)
	}
	if parallel > 0 {
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "serial/parallel-speedup")
	}
}

// --- single page-load throughput benches -------------------------------------

func benchPage(b *testing.B) webgen.Page {
	b.Helper()
	return webgen.Generate(webgen.Spec{Seed: 77, NumPages: 4})[2]
}

func BenchmarkPageLoadPARCEL(b *testing.B) {
	page := benchPage(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := scenario.Build(page, scenario.DefaultParams())
		core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
	}
}

func BenchmarkPageLoadDIR(b *testing.B) {
	page := benchPage(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := scenario.Build(page, scenario.DefaultParams())
		dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationConnsPerDomain toggles DIR's parallelism limits: the
// per-domain cap and the browser-wide pool cap both shape DIR's latency.
func BenchmarkAblationConnsPerDomain(b *testing.B) {
	page := benchPage(b)
	var capped, uncapped float64
	for i := 0; i < b.N; i++ {
		t1 := scenario.Build(page, scenario.DefaultParams())
		capped = dirbrowser.Run(t1, dirbrowser.Options{FixedRandom: true}).OLT.Seconds()
		t2 := scenario.Build(page, scenario.DefaultParams())
		uncapped = dirbrowser.Run(t2, dirbrowser.Options{
			FixedRandom: true, ConnsPerDomain: 32, MaxTotalConns: -1,
		}).OLT.Seconds()
	}
	b.ReportMetric(capped, "capped-OLT-s")
	b.ReportMetric(uncapped, "uncapped-OLT-s")
}

// BenchmarkAblationQuietPeriod varies the §4.5 completion heuristic window:
// shorter windows notify earlier but risk straggler pushes.
func BenchmarkAblationQuietPeriod(b *testing.B) {
	page := benchPage(b)
	quiets := []time.Duration{time.Second, 3 * time.Second, 6 * time.Second}
	results := make([]float64, len(quiets))
	for i := 0; i < b.N; i++ {
		for qi, q := range quiets {
			topo := scenario.Build(page, scenario.DefaultParams())
			cfg := core.DefaultProxyConfig()
			cfg.QuietPeriod = q
			proxy := core.StartProxy(topo, cfg)
			core.NewClient(topo, core.DefaultClientConfig()).Load()
			results[qi] = proxy.Sessions[0].CompleteAt.Seconds()
		}
	}
	for qi, q := range quiets {
		b.ReportMetric(results[qi], "completeAt-s-quiet-"+q.String())
	}
}

// BenchmarkAblationRadioParams compares energy under the default LTE
// calibration vs a long-tail operator configuration.
func BenchmarkAblationRadioParams(b *testing.B) {
	page := benchPage(b)
	var defJ, longTailJ float64
	for i := 0; i < b.N; i++ {
		topo := scenario.Build(page, scenario.DefaultParams())
		run := core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
		defJ = run.RadioJ
		long := parcel.DefaultLTERadio()
		long.CRTail = 500 * time.Millisecond
		long.LongDRXTail = 11 * time.Second
		rep := parcel.SimulateRadio(topo.ClientTrace.Activities(), long, 0)
		longTailJ = rep.TotalEnergy
	}
	b.ReportMetric(defJ, "default-J")
	b.ReportMetric(longTailJ, "long-tail-J")
}

// BenchmarkAblationLocalVsRemoteJS is the Figure 8 design choice at bench
// granularity: radio cost of one interaction, local (PARCEL) vs remote (CB).
func BenchmarkAblationLocalVsRemoteJS(b *testing.B) {
	var perClick float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchCfg(6))
		cb, _ := r.SchemeNamed("CB")
		p, _ := r.SchemeNamed("PARCEL")
		cbClick := (cb.Points[len(cb.Points)-1].CumRadioJ - cb.Points[0].CumRadioJ) / float64(r.Clicks)
		pClick := (p.Points[len(p.Points)-1].CumRadioJ - p.Points[0].CumRadioJ) / float64(r.Clicks)
		perClick = cbClick - pClick
	}
	b.ReportMetric(perClick, "remote-extra-J-per-click")
}

// BenchmarkAblationSchedules compares the three schedules' OLT on one page.
func BenchmarkAblationSchedules(b *testing.B) {
	page := benchPage(b)
	schedules := []sched.Config{sched.ConfigIND, sched.Config512K, sched.ConfigONLD}
	olts := make([]float64, len(schedules))
	for i := 0; i < b.N; i++ {
		for si, sc := range schedules {
			topo := scenario.Build(page, scenario.DefaultParams())
			cfg := core.DefaultProxyConfig()
			cfg.Sched = sc
			olts[si] = core.Run(topo, cfg, core.DefaultClientConfig()).OLT.Seconds()
		}
	}
	for si, sc := range schedules {
		b.ReportMetric(olts[si], "OLT-s-"+sc.String())
	}
}
